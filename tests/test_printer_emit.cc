// Tests for the DSL pretty-printer (round-trip property) and the P2V C++
// emitter (structure of generated source; behavioural equivalence is
// covered by test_emitted.cc against the build-time-generated code).

#include <gtest/gtest.h>

#include "dsl/parser.h"
#include "dsl/printer.h"
#include "optimizers/native_helpers.h"
#include "optimizers/oodb.h"
#include "optimizers/props.h"
#include "optimizers/relational.h"
#include "p2v/emit_cpp.h"

namespace prairie {
namespace {

core::RuleSet MustParse(const std::string& src) {
  auto r = dsl::ParseRuleSet(src, opt::StandardHelpers());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueUnsafe();
}

// ---------------------------------------------------------------------------
// Printer round trips
// ---------------------------------------------------------------------------

void ExpectStructurallyEqual(const core::RuleSet& a, const core::RuleSet& b) {
  ASSERT_EQ(a.trules.size(), b.trules.size());
  ASSERT_EQ(a.irules.size(), b.irules.size());
  ASSERT_EQ(a.algebra->size(), b.algebra->size());
  ASSERT_EQ(a.algebra->properties().size(), b.algebra->properties().size());
  for (size_t i = 0; i < a.trules.size(); ++i) {
    const core::TRule& x = a.trules[i];
    const core::TRule& y = b.trules[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_TRUE(x.lhs->Same(*y.lhs)) << x.name;
    EXPECT_TRUE(x.rhs->Same(*y.rhs)) << x.name;
    EXPECT_EQ(x.pre_test.size(), y.pre_test.size());
    EXPECT_EQ(x.post_test.size(), y.post_test.size());
    EXPECT_EQ(x.test == nullptr, y.test == nullptr);
    if (x.test != nullptr && y.test != nullptr) {
      EXPECT_EQ(x.test->ToString(), y.test->ToString()) << x.name;
    }
    for (size_t k = 0; k < x.post_test.size(); ++k) {
      EXPECT_EQ(x.post_test[k].ToString(), y.post_test[k].ToString());
    }
  }
  for (size_t i = 0; i < a.irules.size(); ++i) {
    const core::IRule& x = a.irules[i];
    const core::IRule& y = b.irules[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(a.algebra->name(x.op), b.algebra->name(y.op));
    EXPECT_EQ(a.algebra->name(x.alg), b.algebra->name(y.alg));
    EXPECT_EQ(x.rhs_input_slots, y.rhs_input_slots);
    EXPECT_EQ(x.alg_slot, y.alg_slot);
    for (size_t k = 0; k < x.pre_opt.size(); ++k) {
      EXPECT_EQ(x.pre_opt[k].ToString(), y.pre_opt[k].ToString());
    }
    for (size_t k = 0; k < x.post_opt.size(); ++k) {
      EXPECT_EQ(x.post_opt[k].ToString(), y.post_opt[k].ToString());
    }
  }
}

TEST(Printer, RelationalSpecRoundTrips) {
  core::RuleSet original = MustParse(opt::RelationalSpecText());
  auto printed = dsl::PrintRuleSet(original);
  ASSERT_TRUE(printed.ok()) << printed.status().ToString();
  core::RuleSet reparsed = MustParse(*printed);
  ExpectStructurallyEqual(original, reparsed);
}

TEST(Printer, OodbSpecRoundTrips) {
  core::RuleSet original = MustParse(opt::OodbSpecText());
  auto printed = dsl::PrintRuleSet(original);
  ASSERT_TRUE(printed.ok()) << printed.status().ToString();
  core::RuleSet reparsed = MustParse(*printed);
  ExpectStructurallyEqual(original, reparsed);
}

TEST(Printer, PrintIsAFixpoint) {
  core::RuleSet original = MustParse(opt::OodbSpecText());
  auto once = dsl::PrintRuleSet(original);
  ASSERT_TRUE(once.ok());
  core::RuleSet reparsed = MustParse(*once);
  auto twice = dsl::PrintRuleSet(reparsed);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(*once, *twice);
}

// ---------------------------------------------------------------------------
// Emitter structure
// ---------------------------------------------------------------------------

TEST(EmitCpp, EmitsExpectedStructure) {
  core::RuleSet rules = MustParse(opt::RelationalSpecText());
  p2v::EmitOptions options;
  options.function_name = "BuildX";
  options.namespace_name = "gen_test";
  auto source = p2v::EmitCpp(rules, options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  // The generated TU declares the factory in the requested namespace...
  EXPECT_NE(source->find("namespace gen_test {"), std::string::npos);
  EXPECT_NE(source->find("BuildX(std::shared_ptr<prairie::core::"
                         "HelperRegistry> helpers)"),
            std::string::npos);
  // ... contains the kept rules but not the merged-away ones ...
  EXPECT_NE(source->find("// trans_rule join_commute"), std::string::npos);
  EXPECT_EQ(source->find("intro_sort_ret"), std::string::npos);
  // ... resolves the JOPR-style aliases (RETS never appears in rules) ...
  EXPECT_EQ(source->find("r.op = kOp_RETS"), std::string::npos);
  // ... registers the enforcer and classifies properties.
  EXPECT_NE(source->find("// enforcer merge_sort"), std::string::npos);
  EXPECT_NE(source->find("rules->phys_props = {kProp_tuple_order};"),
            std::string::npos);
  EXPECT_NE(source->find("rules->cost_prop = 12;"), std::string::npos);
}

TEST(EmitCpp, NativeHelperBindingsAreUsedWhenGiven) {
  core::RuleSet rules = MustParse(opt::RelationalSpecText());
  p2v::EmitOptions with;
  with.native_helpers = opt::native::NativeHelperMap();
  auto direct = p2v::EmitCpp(rules, with);
  ASSERT_TRUE(direct.ok());
  EXPECT_NE(direct->find("prairie::opt::native::is_equijoinable(c.bv.catalog"),
            std::string::npos);
  EXPECT_EQ(direct->find("ES::Call(c, \"is_equijoinable\""),
            std::string::npos);

  auto registry = p2v::EmitCpp(rules, p2v::EmitOptions{});
  ASSERT_TRUE(registry.ok());
  EXPECT_NE(registry->find("ES::Call(c, \"is_equijoinable\""),
            std::string::npos);
}

TEST(EmitCpp, RejectsUnemittableRuleSets) {
  // Two cost properties fail the shared analysis.
  auto rules = dsl::ParseRuleSet(R"(
property c1 : cost;
property c2 : cost;
operator O(1);
algorithm A(1);
irule r: O[D2](?1) => A[D3](?1) {
  postopt { D3.c1 = 0; D3.c2 = 0; }
}
)");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_FALSE(p2v::EmitCpp(*rules).ok());
}

// ---------------------------------------------------------------------------
// Native helpers (direct unit checks on a few interesting ones)
// ---------------------------------------------------------------------------

TEST(NativeHelpers, MapCoversTheStandardRegistry) {
  auto reg = opt::StandardHelpers();
  auto map = opt::native::NativeHelperMap();
  // Every domain helper and the unary/binary numeric builtins have native
  // bindings; only the variadic min/max fall back to the registry.
  for (const std::string& name : reg->Names()) {
    if (name == "min" || name == "max") continue;
    EXPECT_TRUE(map.count(name) > 0) << "no native binding for " << name;
  }
}

TEST(NativeHelpers, NullPredicatesActAsTrue) {
  using algebra::Value;
  auto sel = opt::native::selectivity(nullptr, Value::Null());
  // TRUE predicate over no catalog still needs a catalog.
  EXPECT_FALSE(sel.ok());
  catalog::Catalog cat;
  auto sel2 = opt::native::selectivity(&cat, Value::Null());
  ASSERT_TRUE(sel2.ok());
  EXPECT_DOUBLE_EQ(sel2->AsReal(), 1.0);
}

TEST(NativeHelpers, TypeErrorsSurface) {
  catalog::Catalog cat;
  using algebra::Value;
  EXPECT_FALSE(opt::native::selectivity(&cat, Value::Int(3)).ok());
  EXPECT_FALSE(opt::native::union_(&cat, Value::Int(1), Value::Int(2)).ok());
  EXPECT_FALSE(opt::native::class_card(&cat, Value::Str("nope")).ok());
}

}  // namespace
}  // namespace prairie

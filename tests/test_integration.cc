// End-to-end pipeline tests: DSL text -> Prairie rule set -> P2V ->
// Volcano rule set -> optimization -> executable plan -> results that
// match a canonical evaluation.

#include <gtest/gtest.h>

#include "exec/builder.h"
#include "optimizers/executors.h"
#include "optimizers/oodb.h"
#include "optimizers/props.h"
#include "optimizers/relational.h"
#include "optimizers/volcano_hand.h"
#include "p2v/translator.h"
#include "volcano/engine.h"
#include "workload/workload.h"

namespace prairie {
namespace {

using workload::ExprKind;
using workload::MakeDatabase;
using workload::MakeWorkload;
using workload::QuerySpec;

#define ASSERT_OK(expr)                                \
  do {                                                 \
    ::prairie::common::Status _st = (expr);            \
    ASSERT_TRUE(_st.ok()) << _st.ToString();           \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto PRAIRIE_CONCAT(_res_, __LINE__) = (rexpr);    \
  ASSERT_TRUE(PRAIRIE_CONCAT(_res_, __LINE__).ok())  \
      << PRAIRIE_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(PRAIRIE_CONCAT(_res_, __LINE__)).ValueUnsafe();

TEST(RelationalPipeline, ParsesAndValidates) {
  ASSERT_OK_AND_ASSIGN(core::RuleSet rules, opt::BuildRelationalPrairie());
  EXPECT_EQ(rules.trules.size(), 5u);
  EXPECT_EQ(rules.irules.size(), 7u);
  ASSERT_OK(rules.Validate());
  // SORT must be detected as an enforcer-operator.
  auto enforcers = rules.EnforcerOperators();
  ASSERT_EQ(enforcers.size(), 1u);
  EXPECT_EQ(rules.algebra->name(enforcers[0]), "SORT");
}

TEST(RelationalPipeline, P2VProducesCompactRuleSet) {
  ASSERT_OK_AND_ASSIGN(core::RuleSet rules, opt::BuildRelationalPrairie());
  p2v::TranslationReport report;
  ASSERT_OK_AND_ASSIGN(auto volcano_rules, p2v::Translate(rules, &report));
  // 5 T-rules -> 3 trans_rules (two enforcer-introduction rules merge
  // away); 7 I-rules -> 5 impl_rules + Merge_sort enforcer (Null gone).
  EXPECT_EQ(report.input_trules, 5);
  EXPECT_EQ(report.input_irules, 7);
  EXPECT_EQ(report.output_trans_rules, 3);
  EXPECT_EQ(report.output_impl_rules, 5);
  EXPECT_EQ(report.output_enforcers, 1);
  ASSERT_EQ(report.aliases.size(), 2u);
  // tuple_order is classified physical; cost is the cost property.
  EXPECT_EQ(report.physical_properties,
            std::vector<std::string>{"tuple_order"});
  EXPECT_EQ(report.cost_properties, std::vector<std::string>{"cost"});
}

TEST(RelationalPipeline, OptimizesASimpleJoin) {
  ASSERT_OK_AND_ASSIGN(core::RuleSet rules, opt::BuildRelationalPrairie());
  ASSERT_OK_AND_ASSIGN(auto volcano_rules, p2v::Translate(rules, nullptr));

  QuerySpec spec;
  spec.expr = ExprKind::kE1;
  spec.num_joins = 2;
  spec.seed = 7;
  ASSERT_OK_AND_ASSIGN(workload::Workload w,
                       MakeWorkload(*volcano_rules->algebra, spec));

  volcano::Optimizer optimizer(volcano_rules.get(), &w.catalog);
  ASSERT_OK_AND_ASSIGN(volcano::Plan plan, optimizer.Optimize(*w.query));
  EXPECT_GT(plan.cost, 0);
  ASSERT_NE(plan.root, nullptr);
  algebra::ExprPtr plan_expr = plan.root->ToExpr(*volcano_rules->algebra);
  EXPECT_TRUE(plan_expr->IsAccessPlan(*volcano_rules->algebra))
      << plan_expr->ToString(*volcano_rules->algebra);
}

TEST(RelationalPipeline, PrairieAndHandCodedVolcanoAgreeOnCost) {
  ASSERT_OK_AND_ASSIGN(core::RuleSet prairie_rules,
                       opt::BuildRelationalPrairie());
  ASSERT_OK_AND_ASSIGN(auto generated, p2v::Translate(prairie_rules, nullptr));
  ASSERT_OK_AND_ASSIGN(auto hand, opt::BuildRelationalVolcano());

  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (int joins = 1; joins <= 4; ++joins) {
      QuerySpec spec;
      spec.expr = ExprKind::kE1;
      spec.num_joins = joins;
      spec.seed = seed;
      ASSERT_OK_AND_ASSIGN(workload::Workload wg,
                           MakeWorkload(*generated->algebra, spec));
      ASSERT_OK_AND_ASSIGN(workload::Workload wh,
                           MakeWorkload(*hand->algebra, spec));
      volcano::Optimizer og(generated.get(), &wg.catalog);
      volcano::Optimizer oh(hand.get(), &wh.catalog);
      ASSERT_OK_AND_ASSIGN(volcano::Plan pg, og.Optimize(*wg.query));
      ASSERT_OK_AND_ASSIGN(volcano::Plan ph, oh.Optimize(*wh.query));
      EXPECT_NEAR(pg.cost, ph.cost, 1e-6 * std::max(1.0, pg.cost))
          << "seed=" << seed << " joins=" << joins << "\n generated: "
          << pg.root->ToString(*generated->algebra)
          << "\n hand: " << ph.root->ToString(*hand->algebra);
    }
  }
}

TEST(OodbPipeline, ParsesWithPaperRuleCounts) {
  ASSERT_OK_AND_ASSIGN(core::RuleSet rules, opt::BuildOodbPrairie());
  EXPECT_EQ(rules.trules.size(), 22u);
  EXPECT_EQ(rules.irules.size(), 11u);
  p2v::TranslationReport report;
  ASSERT_OK_AND_ASSIGN(auto volcano_rules, p2v::Translate(rules, &report));
  // The paper's §4.2 counts: 22 T + 11 I -> 17 trans + 9 impl.
  EXPECT_EQ(report.output_trans_rules, 17);
  EXPECT_EQ(report.output_impl_rules, 9);
  EXPECT_EQ(report.output_enforcers, 1);
  EXPECT_EQ(report.dropped_trules.size(), 5u);
}

TEST(OodbPipeline, PrairieAndHandCodedVolcanoAgreeOnCost) {
  ASSERT_OK_AND_ASSIGN(core::RuleSet prairie_rules, opt::BuildOodbPrairie());
  ASSERT_OK_AND_ASSIGN(auto generated, p2v::Translate(prairie_rules, nullptr));
  ASSERT_OK_AND_ASSIGN(auto hand, opt::BuildOodbVolcano());

  for (int qnum = 1; qnum <= 8; ++qnum) {
    QuerySpec spec = workload::PaperQuery(qnum, /*num_joins=*/2, /*seed=*/3);
    ASSERT_OK_AND_ASSIGN(workload::Workload wg,
                         MakeWorkload(*generated->algebra, spec));
    ASSERT_OK_AND_ASSIGN(workload::Workload wh,
                         MakeWorkload(*hand->algebra, spec));
    volcano::Optimizer og(generated.get(), &wg.catalog);
    volcano::Optimizer oh(hand.get(), &wh.catalog);
    ASSERT_OK_AND_ASSIGN(volcano::Plan pg, og.Optimize(*wg.query));
    ASSERT_OK_AND_ASSIGN(volcano::Plan ph, oh.Optimize(*wh.query));
    EXPECT_NEAR(pg.cost, ph.cost, 1e-6 * std::max(1.0, pg.cost))
        << "Q" << qnum << "\n generated: "
        << pg.root->ToString(*generated->algebra)
        << "\n hand: " << ph.root->ToString(*hand->algebra);
  }
}

TEST(EndToEnd, OptimizedPlanComputesTheRightResult) {
  ASSERT_OK_AND_ASSIGN(core::RuleSet prairie_rules, opt::BuildOodbPrairie());
  ASSERT_OK_AND_ASSIGN(auto rules, p2v::Translate(prairie_rules, nullptr));
  exec::ExecutorRegistry registry;
  ASSERT_OK(opt::RegisterStandardExecutors(&registry));

  for (int qnum : {1, 3, 5, 6, 7, 8}) {
    QuerySpec spec = workload::PaperQuery(qnum, /*num_joins=*/2, /*seed=*/11);
    spec.min_card = 8;
    spec.max_card = 30;
    ASSERT_OK_AND_ASSIGN(workload::Workload w,
                         MakeWorkload(*rules->algebra, spec));
    ASSERT_OK_AND_ASSIGN(exec::Database db, MakeDatabase(w.catalog, 99));

    volcano::Optimizer optimizer(rules.get(), &w.catalog);
    ASSERT_OK_AND_ASSIGN(volcano::Plan plan, optimizer.Optimize(*w.query));
    algebra::ExprPtr plan_expr = plan.root->ToExpr(*rules->algebra);
    ASSERT_OK_AND_ASSIGN(
        exec::IterPtr it, registry.Build(*plan_expr, *rules->algebra, db));
    ASSERT_OK_AND_ASSIGN(std::vector<exec::Row> optimized,
                         exec::CollectAll(it.get()));

    // Reference: a second, independently optimized plan with pruning off
    // must compute the same multiset of rows... but the strongest baseline
    // is a forced nested-loops style evaluation. We get one by optimizing
    // with a fresh optimizer whose search is exhaustive and taking ANY
    // plan; instead, compare against the hand-coded optimizer's plan.
    ASSERT_OK_AND_ASSIGN(auto hand, opt::BuildOodbVolcano());
    ASSERT_OK_AND_ASSIGN(workload::Workload wh,
                         MakeWorkload(*hand->algebra, spec));
    volcano::Optimizer oh(hand.get(), &wh.catalog);
    ASSERT_OK_AND_ASSIGN(volcano::Plan hand_plan, oh.Optimize(*wh.query));
    algebra::ExprPtr hand_expr = hand_plan.root->ToExpr(*hand->algebra);
    ASSERT_OK_AND_ASSIGN(
        exec::IterPtr hit, registry.Build(*hand_expr, *hand->algebra, db));
    ASSERT_OK_AND_ASSIGN(std::vector<exec::Row> reference,
                         exec::CollectAll(hit.get()));

    // Projections may order columns differently between plans; both
    // optimizers keep full schemas here, so compare canonicalized rows.
    EXPECT_TRUE(exec::SameResult(optimized, reference))
        << "Q" << qnum << ": optimized plan "
        << plan_expr->ToString(*rules->algebra) << " ("
        << optimized.size() << " rows) vs " << reference.size() << " rows";
    EXPECT_FALSE(optimized.empty() && qnum <= 2);
  }
}

}  // namespace
}  // namespace prairie

// Tests for the serving-grade diagnostics layer (volcano/diag.h): trigger
// precedence and suppression in DiagService::Check, the slow-query-log
// record, bundle writing (manifest completeness, the max_bundles cap),
// the flight-recorder coarse detail filter, and the BatchOptimizer
// wiring.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "optimizers/oodb.h"
#include "p2v/translator.h"
#include "volcano/batch.h"
#include "volcano/diag.h"
#include "volcano/engine.h"
#include "workload/workload.h"

namespace prairie {
namespace {

namespace fs = std::filesystem;

using volcano::CacheOutcome;
using volcano::DiagOptions;
using volcano::DiagService;
using volcano::DiagTrigger;
using volcano::DiagTriggerName;
using volcano::OptimizerStats;
using volcano::QueryDiag;

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto PRAIRIE_CONCAT(_res_, __LINE__) = (rexpr);    \
  ASSERT_TRUE(PRAIRIE_CONCAT(_res_, __LINE__).ok())  \
      << PRAIRIE_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(PRAIRIE_CONCAT(_res_, __LINE__)).ValueUnsafe();

/// A scratch directory under the system temp root, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("prairie_diag_" + tag + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// ---------------------------------------------------------------------------
// Check(): trigger evaluation.

TEST(DiagCheck, AllTriggersDisabledNeverFires) {
  DiagOptions opt;
  opt.on_budget_exhausted = false;
  DiagService diag(opt);
  OptimizerStats stats;
  stats.budget_exhausted = true;
  stats.cache_param_rejects = 100;
  EXPECT_EQ(diag.Check(1e9, stats, /*max_qerror=*/1e9), DiagTrigger::kNone);
}

TEST(DiagCheck, PrecedenceFollowsEnumOrder) {
  DiagOptions opt;
  opt.slow_ms = 10;
  opt.qerror_limit = 2;
  opt.on_budget_exhausted = true;
  DiagService diag(opt);
  OptimizerStats stats;
  stats.budget_exhausted = true;
  // Everything fires: the fixed latency trigger wins.
  EXPECT_EQ(diag.Check(100, stats, 50), DiagTrigger::kSlowFixed);
  // Latency below threshold: Q-error outranks budget exhaustion.
  EXPECT_EQ(diag.Check(1, stats, 50), DiagTrigger::kQError);
  // Q-error below limit: the budget trigger is what remains.
  EXPECT_EQ(diag.Check(1, stats, 1), DiagTrigger::kBudgetExhausted);
  stats.budget_exhausted = false;
  EXPECT_EQ(diag.Check(1, stats, 1), DiagTrigger::kNone);
}

TEST(DiagCheck, AdaptiveSuppressedUntilHistogramHasBaseline) {
  common::Histogram hist;
  for (int i = 0; i < 10; ++i) hist.Observe(1'000'000);  // 1ms.
  DiagOptions opt;
  opt.adaptive_k = 2;
  opt.adaptive_min_count = 256;  // 10 observations is no baseline yet.
  opt.latency_hist = &hist;
  opt.on_budget_exhausted = false;
  DiagService diag(opt);
  OptimizerStats stats;
  EXPECT_EQ(diag.Check(1e6, stats), DiagTrigger::kNone);
}

TEST(DiagCheck, AdaptiveFiresAgainstTheRunningP99) {
  common::Histogram hist;
  // p99 upper bound of 1ms samples: 2^20 - 1 ns (~1.05ms).
  for (int i = 0; i < 512; ++i) hist.Observe(1'000'000);
  DiagOptions opt;
  opt.adaptive_k = 2;
  opt.adaptive_min_count = 256;
  opt.latency_hist = &hist;
  opt.on_budget_exhausted = false;
  DiagService diag(opt);
  OptimizerStats stats;
  // ~1ms latency: within 2 x p99.
  EXPECT_EQ(diag.Check(1.0, stats), DiagTrigger::kNone);
  // 100ms latency: far beyond 2 x p99.
  EXPECT_EQ(diag.Check(100.0, stats), DiagTrigger::kSlowAdaptive);
}

TEST(DiagCheck, CacheStormFiresOncePerThresholdCrossing) {
  DiagOptions opt;
  opt.cache_storm_threshold = 8;
  opt.on_budget_exhausted = false;
  DiagService diag(opt);
  OptimizerStats stats;
  stats.cache_param_rejects = 3;
  stats.cache_stale_drops = 1;  // 4 per Check.
  EXPECT_EQ(diag.Check(0, stats), DiagTrigger::kNone);        // accum 4.
  EXPECT_EQ(diag.Check(0, stats), DiagTrigger::kCacheStorm);  // crosses 8.
  EXPECT_EQ(diag.Check(0, stats), DiagTrigger::kNone);        // accum 4.
  EXPECT_EQ(diag.Check(0, stats), DiagTrigger::kCacheStorm);
}

TEST(DiagService, FingerprintIsStableAndSeparatesQueries) {
  const uint64_t a = DiagService::Fingerprint("Join(A, B)");
  EXPECT_EQ(a, DiagService::Fingerprint("Join(A, B)"));
  EXPECT_NE(a, DiagService::Fingerprint("Join(A, C)"));
  EXPECT_NE(a, DiagService::Fingerprint(""));
}

TEST(DiagService, TriggerNamesAreStableTokens) {
  EXPECT_STREQ(DiagTriggerName(DiagTrigger::kNone), "none");
  EXPECT_STREQ(DiagTriggerName(DiagTrigger::kSlowFixed), "slow_fixed");
  EXPECT_STREQ(DiagTriggerName(DiagTrigger::kSlowAdaptive), "slow_adaptive");
  EXPECT_STREQ(DiagTriggerName(DiagTrigger::kQError), "qerror");
  EXPECT_STREQ(DiagTriggerName(DiagTrigger::kBudgetExhausted),
               "budget_exhausted");
  EXPECT_STREQ(DiagTriggerName(DiagTrigger::kCacheStorm), "cache_storm");
}

TEST(DiagService, CacheOutcomeTokens) {
  OptimizerStats stats;
  EXPECT_STREQ(CacheOutcome(stats), "off");
  stats.cache_probes = 1;
  EXPECT_STREQ(CacheOutcome(stats), "miss");
  stats.cache_stale_drops = 1;
  EXPECT_STREQ(CacheOutcome(stats), "stale");
  stats.cache_param_rejects = 1;
  EXPECT_STREQ(CacheOutcome(stats), "reject");
  stats.plan_from_cache = true;
  EXPECT_STREQ(CacheOutcome(stats), "exact");
  stats.cache_param_hits = 1;
  EXPECT_STREQ(CacheOutcome(stats), "param");
}

// ---------------------------------------------------------------------------
// The slow-query-log record.

TEST(DiagSlowLog, RecordCarriesBreakdownAndRowEstimates) {
  DiagService diag(DiagOptions{});
  QueryDiag qd;
  qd.query_text = "Join(A, B)";
  qd.latency_ms = 42.5;
  qd.max_qerror = 8;
  qd.est_rows = 100;
  qd.actual_rows = 1000;
  // Depth-0 search spans plus a nested span that must NOT be counted.
  common::TraceEvent expand;
  expand.kind = common::TraceEventKind::kGroupExpand;
  expand.dur_ns = 2'000'000;
  common::TraceEvent optimize;
  optimize.kind = common::TraceEventKind::kGroupOptimize;
  optimize.dur_ns = 3'000'000;
  common::TraceEvent nested = optimize;
  nested.depth = 1;
  common::TraceEvent exec;
  exec.kind = common::TraceEventKind::kExecQuery;
  exec.dur_ns = 5'000'000;
  qd.trace_slice = {expand, optimize, nested, exec};
  qd.trace_dropped = 7;

  const std::string rec =
      diag.SlowLogRecord(DiagTrigger::kQError, qd, "some/bundle");
  EXPECT_NE(rec.find("\"fingerprint\":\"" +
                     common::HexEncode(DiagService::Fingerprint(
                         qd.query_text)) +
                     "\""),
            std::string::npos)
      << rec;
  EXPECT_NE(rec.find("\"trigger\":\"qerror\""), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"latency_ms\":42.5"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"cache\":\"off\""), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"breakdown_ms\":{\"expand\":2,\"optimize\":3,"
                     "\"exec\":5}"),
            std::string::npos)
      << rec;
  EXPECT_NE(rec.find("\"est_rows\":100"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"actual_rows\":1000"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"max_qerror\":8"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"trace_events\":4"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"trace_dropped\":7"), std::string::npos) << rec;
  EXPECT_NE(rec.find("\"bundle\":\"some/bundle\""), std::string::npos) << rec;
}

// ---------------------------------------------------------------------------
// Report(): bundles, manifest completeness, caps.

TEST(DiagReport, NoneTriggerIsANoop) {
  std::ostringstream log;
  DiagOptions opt;
  opt.slow_log = &log;
  DiagService diag(opt);
  EXPECT_EQ(diag.Report(DiagTrigger::kNone, QueryDiag{}), "");
  EXPECT_EQ(diag.reports(), 0u);
  EXPECT_TRUE(log.str().empty());
}

TEST(DiagReport, BundleManifestListsExactlyTheWrittenMembers) {
  TempDir tmp("manifest");
  common::MetricsRegistry registry;
  registry.GetCounter("diag_test_total")->Inc(1);
  std::ostringstream log;
  DiagOptions opt;
  opt.diag_dir = tmp.path().string();
  opt.slow_log = &log;
  opt.registry = &registry;
  opt.flags = "--query 7 --slow-ms 1";
  opt.seed = 42;
  DiagService diag(opt);

  registry.GetCounter("diag_test_total")->Inc(5);  // Lands in the delta.
  QueryDiag qd;
  qd.query_text = "Join(A, B)";
  qd.latency_ms = 9;
  qd.provenance = "winner: NL_join\n";
  qd.memo_dot = "digraph memo {}\n";
  qd.analyze_text = "NL_join rows=3\n";
  qd.analyze_json = "{\"alg\":\"NL_join\"}\n";
  qd.feedback_json = "{\"key\":\"00\"}\n";
  const std::string dir = diag.Report(DiagTrigger::kSlowFixed, qd);
  ASSERT_FALSE(dir.empty());
  EXPECT_EQ(diag.bundles_written(), 1u);

  // The directory is <fingerprint>-<seq>.
  EXPECT_EQ(fs::path(dir).filename().string(),
            common::HexEncode(DiagService::Fingerprint(qd.query_text)) +
                "-0");

  std::ifstream mf(fs::path(dir) / "manifest.json");
  ASSERT_TRUE(mf.good());
  std::ostringstream mbuf;
  mbuf << mf.rdbuf();
  const std::string manifest = mbuf.str();
  EXPECT_NE(manifest.find("\"trigger\":\"slow_fixed\""), std::string::npos);
  EXPECT_NE(manifest.find("\"flags\":\"--query 7 --slow-ms 1\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(manifest.find("\"build\":{"), std::string::npos);
  // Every member the manifest lists exists on disk, and every file on
  // disk is listed (completeness both ways).
  size_t listed = 0;
  for (const char* m :
       {"query.txt", "metrics_delta.json", "provenance.txt", "memo.dot",
        "analyze.txt", "analyze.json", "feedback.json", "slow_record.json",
        "manifest.json"}) {
    EXPECT_NE(manifest.find("\"" + std::string(m) + "\""), std::string::npos)
        << "manifest does not list " << m << ": " << manifest;
    EXPECT_TRUE(fs::exists(fs::path(dir) / m)) << m;
    ++listed;
  }
  size_t on_disk = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++on_disk;
  }
  EXPECT_EQ(on_disk, listed);
  // No rules were configured, so no trace.json — and the manifest must
  // not claim one.
  EXPECT_EQ(manifest.find("trace.json"), std::string::npos);
  // The metrics delta covers the window since arming.
  std::ifstream df(fs::path(dir) / "metrics_delta.json");
  std::ostringstream dbuf;
  dbuf << df.rdbuf();
  EXPECT_NE(dbuf.str().find(
                "{\"metric\":\"diag_test_total\",\"type\":\"counter\","
                "\"delta\":5,\"total\":6}"),
            std::string::npos)
      << dbuf.str();
  // The slow-log line names the bundle.
  EXPECT_NE(log.str().find("\"bundle\":\"" + dir + "\""), std::string::npos);
}

TEST(DiagReport, MaxBundlesCapsDiskButNotTheLog) {
  TempDir tmp("cap");
  std::ostringstream log;
  DiagOptions opt;
  opt.diag_dir = tmp.path().string();
  opt.max_bundles = 1;
  opt.slow_log = &log;
  DiagService diag(opt);
  QueryDiag qd;
  qd.query_text = "Q";
  EXPECT_FALSE(diag.Report(DiagTrigger::kSlowFixed, qd).empty());
  EXPECT_TRUE(diag.Report(DiagTrigger::kSlowFixed, qd).empty());
  EXPECT_EQ(diag.bundles_written(), 1u);
  EXPECT_EQ(diag.reports(), 2u);
  // Both reports reached the log; the capped one with an empty bundle.
  size_t lines = 0;
  std::istringstream in(log.str());
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(log.str().find("\"bundle\":\"\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Coarse flight-recorder detail and the BatchOptimizer wiring.

class DiagOodbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(core::RuleSet prairie_rules, opt::BuildOodbPrairie());
    ASSERT_OK_AND_ASSIGN(rules_, p2v::Translate(prairie_rules, nullptr));
  }

  workload::Workload MakeQ(int qnum, int joins, uint64_t seed) {
    auto w = workload::MakeWorkload(
        *rules_->algebra, workload::PaperQuery(qnum, joins, seed));
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return std::move(*w);
  }

  std::shared_ptr<volcano::RuleSet> rules_;
};

#if PRAIRIE_TRACING
TEST_F(DiagOodbTest, CoarseDetailKeepsSpinesDropsAttempts) {
  workload::Workload w = MakeQ(3, 2, 1);
  common::RingBufferSink sink(1 << 16);
  volcano::OptimizerOptions opts;
  opts.trace = &sink;
  opts.trace_detail = common::TraceDetail::kCoarse;
  volcano::Optimizer optimizer(rules_.get(), &w.catalog, opts);
  ASSERT_TRUE(optimizer.Optimize(*w.query).ok());
  size_t spines = 0;
  for (const common::TraceEvent& e : sink.Snapshot()) {
    switch (e.kind) {
      case common::TraceEventKind::kGroupExpand:
      case common::TraceEventKind::kGroupOptimize:
      case common::TraceEventKind::kWinnerSelected:
        ++spines;
        break;
      case common::TraceEventKind::kTransAttempt:
      case common::TraceEventKind::kImplAttempt:
      case common::TraceEventKind::kEnforcerAttempt:
      case common::TraceEventKind::kTransFire:
      case common::TraceEventKind::kPlanCosted:
      case common::TraceEventKind::kPrune:
      case common::TraceEventKind::kCycleGuard:
        ADD_FAILURE() << "coarse trace leaked kind "
                      << static_cast<int>(e.kind);
        break;
      default:
        break;
    }
  }
  EXPECT_GT(spines, 0u);
}
#endif  // PRAIRIE_TRACING

TEST_F(DiagOodbTest, BatchWiringReportsEverySlowQuery) {
  TempDir tmp("batch");
  std::ostringstream log;
  DiagOptions dopt;
  dopt.slow_ms = 1e-9;  // Every query is "slow": force the trigger path.
  dopt.diag_dir = tmp.path().string();
  dopt.max_bundles = 2;
  dopt.slow_log = &log;
  dopt.rules = rules_.get();
  DiagService diag(dopt);

  std::vector<workload::Workload> workloads;
  for (int q = 1; q <= 4; ++q) workloads.push_back(MakeQ(q, 2, 1));
  std::vector<volcano::BatchQuery> queries;
  for (const workload::Workload& w : workloads) {
    queries.push_back({w.query.get(), &w.catalog});
  }
  volcano::BatchOptions bopt;
  bopt.jobs = 2;
  bopt.diag = &diag;
  volcano::BatchOptimizer batch(rules_.get(), bopt);
  std::vector<volcano::BatchResult> results = batch.OptimizeAll(queries);
  for (const auto& r : results) {
    ASSERT_TRUE(r.plan.ok()) << r.plan.status().ToString();
  }

  EXPECT_EQ(diag.reports(), queries.size());
  EXPECT_EQ(diag.bundles_written(), 2u);  // Capped below the report count.
  size_t lines = 0;
  std::istringstream in(log.str());
  for (std::string line; std::getline(in, line);) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"trigger\":\"slow_fixed\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, queries.size());
  // Distinct query *trees* produce distinct fingerprints (TreeString
  // carries the descriptor annotations; plain operator names would
  // collide). Paper queries pair up across environments — Q1/Q2 share a
  // tree and differ only in the catalog — so the expectation is the
  // number of distinct TreeStrings, not of queries.
  std::set<std::string> want_fps;
  for (const volcano::BatchQuery& q : queries) {
    want_fps.insert(common::HexEncode(DiagService::Fingerprint(
        q.tree->TreeString(*rules_->algebra))));
  }
  EXPECT_GT(want_fps.size(), 1u);
  std::set<std::string> fps;
  size_t pos = 0;
  const std::string text = log.str();
  while ((pos = text.find("\"fingerprint\":\"", pos)) != std::string::npos) {
    pos += 15;
    fps.insert(text.substr(pos, 16));
  }
  EXPECT_EQ(fps, want_fps);
#if PRAIRIE_TRACING
  // The diag-armed batch kept a flight recorder even though no batch
  // trace was requested — but trace_events() stays empty (it means "the
  // trace the caller asked for").
  EXPECT_NE(text.find("\"trace_events\":"), std::string::npos);
  EXPECT_EQ(text.find("\"trace_events\":0,"), std::string::npos);
  EXPECT_TRUE(batch.trace_events().empty());
#endif
}

}  // namespace
}  // namespace prairie

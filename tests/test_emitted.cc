// Tests the *generated-code* deployment: at build time, the p2v_emit tool
// translated the shipped Prairie specifications into C++ translation
// units (tests/generated/*.cc in the build tree), which were compiled
// into this binary. The emitted optimizers must behave identically to
// the interpreted Translate() deployment: same rule counts, same plan
// costs, same search-space statistics.

#include <gtest/gtest.h>

#include "optimizers/oodb.h"
#include "optimizers/props.h"
#include "optimizers/relational.h"
#include "p2v/translator.h"
#include "volcano/engine.h"
#include "workload/workload.h"

// Factories defined by the generated translation units.
namespace prairie_generated {
prairie::common::Result<std::shared_ptr<prairie::volcano::RuleSet>>
BuildRelationalEmitted(std::shared_ptr<prairie::core::HelperRegistry>);
prairie::common::Result<std::shared_ptr<prairie::volcano::RuleSet>>
BuildOodbEmitted(std::shared_ptr<prairie::core::HelperRegistry>);
}  // namespace prairie_generated

namespace prairie {
namespace {

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto PRAIRIE_CONCAT(_res_, __LINE__) = (rexpr);    \
  ASSERT_TRUE(PRAIRIE_CONCAT(_res_, __LINE__).ok())  \
      << PRAIRIE_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(PRAIRIE_CONCAT(_res_, __LINE__)).ValueUnsafe();

TEST(Emitted, RelationalBuildsWithExpectedShape) {
  ASSERT_OK_AND_ASSIGN(
      auto rules,
      prairie_generated::BuildRelationalEmitted(opt::StandardHelpers()));
  EXPECT_EQ(rules->trans_rules.size(), 3u);
  EXPECT_EQ(rules->impl_rules.size(), 5u);
  EXPECT_EQ(rules->enforcers.size(), 1u);
  EXPECT_EQ(rules->phys_props.size(), 1u);
}

TEST(Emitted, OodbBuildsWithPaperRuleCounts) {
  ASSERT_OK_AND_ASSIGN(
      auto rules,
      prairie_generated::BuildOodbEmitted(opt::StandardHelpers()));
  EXPECT_EQ(rules->trans_rules.size(), 17u);
  EXPECT_EQ(rules->impl_rules.size(), 9u);
  EXPECT_EQ(rules->enforcers.size(), 1u);
}

class EmittedVsInterpreted
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EmittedVsInterpreted, SamePlansSameSearch) {
  static auto interpreted = [] {
    auto pr = opt::BuildOodbPrairie();
    EXPECT_TRUE(pr.ok());
    auto v = p2v::Translate(*pr, nullptr);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }();
  static auto emitted = [] {
    auto v = prairie_generated::BuildOodbEmitted(opt::StandardHelpers());
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }();

  workload::QuerySpec spec;
  spec.expr = static_cast<workload::ExprKind>(std::get<0>(GetParam()));
  spec.num_joins = std::get<1>(GetParam());
  spec.seed = static_cast<uint64_t>(std::get<2>(GetParam()));
  spec.with_indexes = (std::get<2>(GetParam()) % 2) == 0;

  ASSERT_OK_AND_ASSIGN(workload::Workload wi,
                       workload::MakeWorkload(*interpreted->algebra, spec));
  ASSERT_OK_AND_ASSIGN(workload::Workload we,
                       workload::MakeWorkload(*emitted->algebra, spec));
  volcano::Optimizer oi(interpreted.get(), &wi.catalog);
  volcano::Optimizer oe(emitted.get(), &we.catalog);
  ASSERT_OK_AND_ASSIGN(volcano::Plan pi, oi.Optimize(*wi.query));
  ASSERT_OK_AND_ASSIGN(volcano::Plan pe, oe.Optimize(*we.query));
  EXPECT_NEAR(pi.cost, pe.cost, 1e-9 * std::max(1.0, pi.cost))
      << " interpreted " << pi.root->ToString(*interpreted->algebra)
      << "\n emitted     " << pe.root->ToString(*emitted->algebra);
  EXPECT_EQ(oi.stats().groups, oe.stats().groups);
  EXPECT_EQ(oi.stats().mexprs, oe.stats().mexprs);
  EXPECT_EQ(oi.stats().plans_costed, oe.stats().plans_costed);
  // Identical plan shapes (compare rendered trees via op names).
  EXPECT_EQ(pi.root->ToString(*interpreted->algebra),
            pe.root->ToString(*emitted->algebra));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EmittedVsInterpreted,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "E" + std::to_string(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Emitted, RelationalMatchesInterpretedOnJoins) {
  static auto interpreted = [] {
    auto pr = opt::BuildRelationalPrairie();
    EXPECT_TRUE(pr.ok());
    auto v = p2v::Translate(*pr, nullptr);
    EXPECT_TRUE(v.ok());
    return *v;
  }();
  ASSERT_OK_AND_ASSIGN(
      auto emitted,
      prairie_generated::BuildRelationalEmitted(opt::StandardHelpers()));
  for (int joins = 1; joins <= 5; ++joins) {
    workload::QuerySpec spec;
    spec.expr = workload::ExprKind::kE1;
    spec.num_joins = joins;
    spec.seed = 11;
    ASSERT_OK_AND_ASSIGN(workload::Workload wi,
                         workload::MakeWorkload(*interpreted->algebra, spec));
    ASSERT_OK_AND_ASSIGN(workload::Workload we,
                         workload::MakeWorkload(*emitted->algebra, spec));
    volcano::Optimizer oi(interpreted.get(), &wi.catalog);
    volcano::Optimizer oe(emitted.get(), &we.catalog);
    ASSERT_OK_AND_ASSIGN(volcano::Plan pi, oi.Optimize(*wi.query));
    ASSERT_OK_AND_ASSIGN(volcano::Plan pe, oe.Optimize(*we.query));
    EXPECT_NEAR(pi.cost, pe.cost, 1e-9 * std::max(1.0, pi.cost));
  }
}

}  // namespace
}  // namespace prairie

// Plan-cache tests (DESIGN.md §8): fingerprint canonicality, warm-hit
// correctness against a fresh search across Q1..Q8, epoch invalidation
// (stale entries are never served, raced inserts are refused), per-shard
// LRU eviction under entry/byte budgets, catalog-uid isolation, and the
// foreign-store bypass.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/descriptor_store.h"
#include "algebra/param.h"
#include "optimizers/oodb.h"
#include "p2v/translator.h"
#include "volcano/batch.h"
#include "volcano/engine.h"
#include "volcano/plancache.h"
#include "workload/workload.h"

namespace prairie {
namespace {

using algebra::DescriptorStore;
using algebra::StoreMode;
using volcano::BatchOptimizer;
using volcano::BatchOptions;
using volcano::BatchQuery;
using volcano::Optimizer;
using volcano::OptimizerOptions;
using volcano::Plan;
using volcano::PlanCache;
using volcano::PlanCacheOptions;
using volcano::PlanCacheStats;

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto PRAIRIE_CONCAT(_res_, __LINE__) = (rexpr);    \
  ASSERT_TRUE(PRAIRIE_CONCAT(_res_, __LINE__).ok())  \
      << PRAIRIE_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(PRAIRIE_CONCAT(_res_, __LINE__)).ValueUnsafe();

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(core::RuleSet prairie_rules, opt::BuildOodbPrairie());
    ASSERT_OK_AND_ASSIGN(rules_, p2v::Translate(prairie_rules, nullptr));
  }

  workload::Workload MakeQ(int qnum, int joins, uint64_t seed) {
    auto w = workload::MakeWorkload(
        *rules_->algebra, workload::PaperQuery(qnum, joins, seed));
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return std::move(*w);
  }

  std::string Render(const Plan& plan) {
    return plan.root->ToString(*rules_->algebra);
  }

  std::shared_ptr<volcano::RuleSet> rules_;
};

// ---------------------------------------------------------------------------
// Fingerprints.

TEST_F(PlanCacheTest, FingerprintIsDeterministicAndStructural) {
  workload::Workload w = MakeQ(5, 3, 7);
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);

  std::string a, b;
  const uint64_t ha = w.query->Fingerprint(&store, &a);
  const uint64_t hb = w.query->Fingerprint(&store, &b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ha, hb);
  EXPECT_FALSE(a.empty());

  // A structurally different query of the same family serializes to
  // different bytes.
  workload::Workload other = MakeQ(5, 3, 8);
  std::string c;
  other.query->Fingerprint(&store, &c);
  EXPECT_NE(a, c);

  // An equal clone serializes identically.
  algebra::ExprPtr clone = w.query->Clone();
  std::string d;
  const uint64_t hd = clone->Fingerprint(&store, &d);
  EXPECT_EQ(a, d);
  EXPECT_EQ(ha, hd);
}

TEST_F(PlanCacheTest, KeysDifferByRequirementAndCatalog) {
  workload::Workload w = MakeQ(1, 2, 3);
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  const PlanCache::Key k1 = PlanCache::MakeKey(*w.query, 1, w.catalog, &store);
  const PlanCache::Key k2 = PlanCache::MakeKey(*w.query, 2, w.catalog, &store);
  EXPECT_NE(k1.bytes, k2.bytes);

  catalog::Catalog copy = w.catalog;  // identical content, fresh uid
  const PlanCache::Key k3 = PlanCache::MakeKey(*w.query, 1, copy, &store);
  EXPECT_NE(k1.bytes, k3.bytes);
  EXPECT_NE(k1.catalog_uid, k3.catalog_uid);
}

// ---------------------------------------------------------------------------
// Warm-hit correctness: cached answers must equal a fresh search.

TEST_F(PlanCacheTest, WarmHitPlansEqualFreshReferenceAcrossQ1Q8) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);
  for (int q = 1; q <= 8; ++q) {
    workload::Workload w = MakeQ(q, 2, 11);

    // Fresh reference: no cache anywhere near this optimizer.
    Optimizer ref(rules_.get(), &w.catalog, {});
    auto ref_plan = ref.Optimize(*w.query);
    ASSERT_TRUE(ref_plan.ok()) << "Q" << q << ": "
                               << ref_plan.status().ToString();

    OptimizerOptions options;
    options.plan_cache = &cache;

    // Cold pass fills the cache.
    Optimizer cold(rules_.get(), &w.catalog, options, &store);
    auto cold_plan = cold.Optimize(*w.query);
    ASSERT_TRUE(cold_plan.ok());
    EXPECT_FALSE(cold.stats().plan_from_cache);
    EXPECT_EQ(cold.stats().cache_probes, 1u);
    EXPECT_EQ(cold.stats().cache_hits, 0u);

    // Warm pass is served from the cache and must match the reference
    // byte for byte.
    Optimizer warm(rules_.get(), &w.catalog, options, &store);
    auto warm_plan = warm.Optimize(*w.query);
    ASSERT_TRUE(warm_plan.ok());
    EXPECT_TRUE(warm.stats().plan_from_cache) << "Q" << q;
    EXPECT_EQ(warm.stats().cache_hits, 1u);
    EXPECT_EQ(warm_plan->cost, ref_plan->cost) << "Q" << q;
    EXPECT_EQ(Render(*warm_plan), Render(*ref_plan)) << "Q" << q;
    EXPECT_EQ(Render(*warm_plan), Render(*cold_plan)) << "Q" << q;
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 8u);
  EXPECT_EQ(stats.inserts, 8u);
  EXPECT_EQ(stats.stale_drops, 0u);
}

// ---------------------------------------------------------------------------
// Epoch invalidation.

TEST_F(PlanCacheTest, StaleEntriesAreNeverServedAfterCatalogMutation) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);
  workload::Workload w = MakeQ(2, 2, 5);
  OptimizerOptions options;
  options.plan_cache = &cache;

  Optimizer cold(rules_.get(), &w.catalog, options, &store);
  ASSERT_TRUE(cold.Optimize(*w.query).ok());
  ASSERT_EQ(cache.stats().inserts, 1u);

  // Mutate the catalog: every cached plan for it is now stale.
  catalog::StoredFile* c1 = w.catalog.MutableFile("C1");
  ASSERT_NE(c1, nullptr);
  c1->set_cardinality(c1->cardinality() * 100);

  Optimizer after(rules_.get(), &w.catalog, options, &store);
  auto plan = after.Optimize(*w.query);
  ASSERT_TRUE(plan.ok());
  // The probe found the entry, saw the epoch mismatch, dropped it, and
  // the full search ran against the mutated statistics.
  EXPECT_FALSE(after.stats().plan_from_cache);
  EXPECT_EQ(cache.stats().stale_drops, 1u);

  // The re-optimized plan must equal a fresh cache-less search over the
  // mutated catalog.
  Optimizer ref(rules_.get(), &w.catalog, {});
  auto ref_plan = ref.Optimize(*w.query);
  ASSERT_TRUE(ref_plan.ok());
  EXPECT_EQ(plan->cost, ref_plan->cost);
  EXPECT_EQ(Render(*plan), Render(*ref_plan));

  // And the re-insert happened under the new epoch: the next pass hits.
  Optimizer warm(rules_.get(), &w.catalog, options, &store);
  auto warm_plan = warm.Optimize(*w.query);
  ASSERT_TRUE(warm_plan.ok());
  EXPECT_TRUE(warm.stats().plan_from_cache);
  EXPECT_EQ(Render(*warm_plan), Render(*ref_plan));
}

TEST_F(PlanCacheTest, InsertIsRefusedWhenCatalogMovedPastTheEpoch) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);
  workload::Workload w = MakeQ(1, 2, 5);

  const PlanCache::Key key =
      PlanCache::MakeKey(*w.query, 0, w.catalog, &store);
  // The catalog moves between fingerprinting and insert — the plan may
  // reflect mixed state and must not be stored.
  w.catalog.BumpVersion();
  cache.Insert(key, w.catalog, Plan{});
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().skipped_inserts, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PlanCacheTest, CatalogMutationMidBatchNeverServesStalePlans) {
  // Shared cache over a batch; the catalog mutates between batch rounds.
  // Every post-mutation result must equal a fresh cache-less reference
  // computed against the mutated catalog.
  std::vector<workload::Workload> workloads;
  for (int q = 1; q <= 8; ++q) workloads.push_back(MakeQ(q, 2, 3));
  std::vector<BatchQuery> queries;
  for (const auto& w : workloads) {
    queries.push_back(BatchQuery{w.query.get(), &w.catalog});
  }

  BatchOptions options;
  options.jobs = 4;
  options.plan_cache_entries = 1024;
  BatchOptimizer batch(rules_.get(), options);
  auto round1 = batch.OptimizeAll(queries);
  for (const auto& r : round1) ASSERT_TRUE(r.plan.ok());

  // Mutate every catalog (each query owns one here).
  for (auto& w : workloads) {
    catalog::StoredFile* f = w.catalog.MutableFile("C1");
    ASSERT_NE(f, nullptr);
    f->set_cardinality(f->cardinality() * 50);
  }

  auto round2 = batch.OptimizeAll(queries);
  ASSERT_EQ(round2.size(), queries.size());
  for (size_t i = 0; i < round2.size(); ++i) {
    ASSERT_TRUE(round2[i].plan.ok());
    // No result of this round may come from the pre-mutation cache.
    EXPECT_FALSE(round2[i].stats.plan_from_cache) << "query " << i;
    Optimizer ref(rules_.get(), &workloads[i].catalog, {});
    auto ref_plan = ref.Optimize(*workloads[i].query);
    ASSERT_TRUE(ref_plan.ok());
    EXPECT_EQ(round2[i].plan->cost, ref_plan->cost) << "query " << i;
    EXPECT_EQ(Render(*round2[i].plan), Render(*ref_plan)) << "query " << i;
  }
  EXPECT_EQ(batch.plan_cache()->stats().stale_drops, queries.size());

  // A third round (no further mutation) is served warm — and correctly.
  auto round3 = batch.OptimizeAll(queries);
  for (size_t i = 0; i < round3.size(); ++i) {
    ASSERT_TRUE(round3[i].plan.ok());
    EXPECT_TRUE(round3[i].stats.plan_from_cache) << "query " << i;
    EXPECT_EQ(Render(*round3[i].plan), Render(*round2[i].plan));
  }
}

// ---------------------------------------------------------------------------
// Eviction.

TEST_F(PlanCacheTest, LruEvictsOldestUnderEntryBudget) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCacheOptions copt;
  copt.shards = 1;  // deterministic: one LRU list
  copt.max_entries = 2;
  copt.max_bytes = 0;
  PlanCache cache(&store, copt);

  std::vector<workload::Workload> ws;
  std::vector<PlanCache::Key> keys;
  for (int i = 0; i < 3; ++i) {
    ws.push_back(MakeQ(1, 2, static_cast<uint64_t>(20 + i)));
    keys.push_back(PlanCache::MakeKey(*ws[i].query, 0, ws[i].catalog, &store));
    cache.Insert(keys[i], ws[i].catalog, Plan{});
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The first-inserted key was least recently used and is gone.
  PlanCache::Hit hit;
  EXPECT_FALSE(cache.Probe(keys[0], ws[0].catalog, &hit));
  EXPECT_TRUE(cache.Probe(keys[1], ws[1].catalog, &hit));
  EXPECT_TRUE(cache.Probe(keys[2], ws[2].catalog, &hit));

  // Probing refreshes recency: touch key 1 so key 2 becomes the LRU
  // victim of the next insert.
  EXPECT_TRUE(cache.Probe(keys[1], ws[1].catalog, &hit));
  workload::Workload w3 = MakeQ(1, 2, 40);
  const PlanCache::Key k3 = PlanCache::MakeKey(*w3.query, 0, w3.catalog,
                                               &store);
  cache.Insert(k3, w3.catalog, Plan{});
  EXPECT_FALSE(cache.Probe(keys[2], ws[2].catalog, &hit));
  EXPECT_TRUE(cache.Probe(keys[1], ws[1].catalog, &hit));
  EXPECT_TRUE(cache.Probe(k3, w3.catalog, &hit));
}

TEST_F(PlanCacheTest, ByteBudgetBoundsRetainedSize) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCacheOptions copt;
  copt.shards = 1;
  copt.max_entries = 0;
  copt.max_bytes = 2048;  // roughly one entry's footprint
  PlanCache cache(&store, copt);

  for (int i = 0; i < 8; ++i) {
    workload::Workload w = MakeQ(1, 2, static_cast<uint64_t>(60 + i));
    const PlanCache::Key key =
        PlanCache::MakeKey(*w.query, 0, w.catalog, &store);
    cache.Insert(key, w.catalog, Plan{});
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.bytes(), 2048u);
  EXPECT_GE(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// Isolation.

TEST_F(PlanCacheTest, IdenticalCatalogsWithDistinctUidsDoNotShareEntries) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);
  workload::Workload w = MakeQ(3, 2, 9);
  catalog::Catalog copy = w.catalog;  // same content, fresh uid

  OptimizerOptions options;
  options.plan_cache = &cache;
  Optimizer a(rules_.get(), &w.catalog, options, &store);
  ASSERT_TRUE(a.Optimize(*w.query).ok());

  // Same query against the copied catalog: the uid differs, so the entry
  // cached for the original must not be served.
  Optimizer b(rules_.get(), &copy, options, &store);
  auto plan = b.Optimize(*w.query);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(b.stats().plan_from_cache);
  EXPECT_EQ(cache.stats().inserts, 2u);
}

TEST_F(PlanCacheTest, CacheBoundToForeignStoreIsBypassed) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  DescriptorStore other(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&other);  // NOT the store the optimizer interns through
  workload::Workload w = MakeQ(1, 2, 13);

  OptimizerOptions options;
  options.plan_cache = &cache;
  Optimizer opt(rules_.get(), &w.catalog, options, &store);
  auto plan = opt.Optimize(*w.query);
  ASSERT_TRUE(plan.ok());
  // Foreign ids would make the key meaningless; the engine must not have
  // touched the cache at all.
  EXPECT_EQ(opt.stats().cache_probes, 0u);
  EXPECT_EQ(cache.stats().probes, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PlanCacheTest, BatchCacheOnAndOffProduceIdenticalPlans) {
  std::vector<workload::Workload> workloads;
  for (int q = 1; q <= 8; ++q) workloads.push_back(MakeQ(q, 3, 17));
  std::vector<BatchQuery> queries;
  for (const auto& w : workloads) {
    queries.push_back(BatchQuery{w.query.get(), &w.catalog});
  }

  BatchOptions off;
  off.jobs = 2;
  BatchOptimizer batch_off(rules_.get(), off);
  auto ref = batch_off.OptimizeAll(queries);

  BatchOptions on;
  on.jobs = 2;
  on.plan_cache_entries = 1024;
  BatchOptimizer batch_on(rules_.get(), on);
  auto cold = batch_on.OptimizeAll(queries);
  auto warm = batch_on.OptimizeAll(queries);

  ASSERT_EQ(ref.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(ref[i].plan.ok());
    ASSERT_TRUE(cold[i].plan.ok());
    ASSERT_TRUE(warm[i].plan.ok());
    EXPECT_EQ(cold[i].plan->cost, ref[i].plan->cost) << "query " << i;
    EXPECT_EQ(warm[i].plan->cost, ref[i].plan->cost) << "query " << i;
    EXPECT_EQ(Render(*cold[i].plan), Render(*ref[i].plan)) << "query " << i;
    EXPECT_EQ(Render(*warm[i].plan), Render(*ref[i].plan)) << "query " << i;
    EXPECT_TRUE(warm[i].stats.plan_from_cache) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Parameterized entries: constant-stripped skeleton keys, rebinding,
// sensitivity guard, and exact-only fallbacks (DESIGN.md §8).

using ParameterizedCacheTest = PlanCacheTest;

TEST_F(ParameterizedCacheTest, ReboundPlansEqualFreshOptimizationAcrossQ5Q8) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);
  OptimizerOptions options;
  options.plan_cache = &cache;
  options.param_cache = true;

  for (int q = 5; q <= 8; ++q) {
    workload::Workload w = MakeQ(q, 2, 19);
    algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
    ASSERT_NE(pq.skeleton, nullptr) << "Q" << q;
    ASSERT_EQ(pq.slots.size(), 3u) << "Q" << q;  // bc_i = ?k per class

    // Cold pass inserts the skeleton entry.
    Optimizer cold(rules_.get(), &w.catalog, options, &store);
    ASSERT_TRUE(cold.Optimize(*w.query).ok());
    EXPECT_FALSE(cold.stats().plan_from_cache);

    // Constant-varying probes of the same skeleton: every one must be
    // served by rebinding, and every rebound plan must equal a fresh
    // cache-less optimization of the same bound query.
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<algebra::Scalar> values;
      for (const algebra::ParamSlot& slot : pq.slots) {
        const int64_t domain =
            std::max<int64_t>(1, w.catalog.DistinctValues(slot.attr));
        values.push_back(algebra::Scalar::Int(
            (3 * static_cast<int64_t>(variant) + 7) % domain));
      }
      algebra::ExprPtr bound = algebra::BindQuery(*pq.skeleton, values);
      ASSERT_NE(bound, nullptr);

      Optimizer warm(rules_.get(), &w.catalog, options, &store);
      auto warm_plan = warm.Optimize(*bound);
      ASSERT_TRUE(warm_plan.ok()) << "Q" << q << " variant " << variant;
      EXPECT_TRUE(warm.stats().plan_from_cache)
          << "Q" << q << " variant " << variant;
      EXPECT_EQ(warm.stats().cache_param_hits, 1u);

      Optimizer ref(rules_.get(), &w.catalog, {});
      auto ref_plan = ref.Optimize(*bound);
      ASSERT_TRUE(ref_plan.ok());
      EXPECT_EQ(warm_plan->cost, ref_plan->cost)
          << "Q" << q << " variant " << variant;
      EXPECT_EQ(Render(*warm_plan), Render(*ref_plan))
          << "Q" << q << " variant " << variant;
    }
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.param_inserts, 4u);
  EXPECT_EQ(stats.unrebindable_inserts, 0u);
  EXPECT_EQ(stats.param_hits, 12u);
  EXPECT_EQ(stats.sensitivity_rejects, 0u);
}

TEST_F(ParameterizedCacheTest, DisabledParamCacheLeavesExactPathUntouched) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);
  OptimizerOptions options;
  options.plan_cache = &cache;  // param_cache stays false

  workload::Workload w = MakeQ(5, 2, 23);
  Optimizer cold(rules_.get(), &w.catalog, options, &store);
  ASSERT_TRUE(cold.Optimize(*w.query).ok());

  // A constant-variant of the same query misses: the exact path keys on
  // the literal bytes.
  algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
  ASSERT_NE(pq.skeleton, nullptr);
  std::vector<algebra::Scalar> values;
  for (const algebra::ParamSlot& slot : pq.slots) {
    const int64_t domain =
        std::max<int64_t>(1, w.catalog.DistinctValues(slot.attr));
    const int64_t* original = std::get_if<int64_t>(&slot.value.v);
    ASSERT_NE(original, nullptr);
    values.push_back(algebra::Scalar::Int((*original + 1) % domain));
  }
  algebra::ExprPtr variant = algebra::BindQuery(*pq.skeleton, values);
  ASSERT_NE(variant, nullptr);
  Optimizer probe(rules_.get(), &w.catalog, options, &store);
  ASSERT_TRUE(probe.Optimize(*variant).ok());
  EXPECT_FALSE(probe.stats().plan_from_cache);

  // The byte-identical query still hits, and no parameterized machinery
  // ever engaged.
  Optimizer warm(rules_.get(), &w.catalog, options, &store);
  ASSERT_TRUE(warm.Optimize(*w.query).ok());
  EXPECT_TRUE(warm.stats().plan_from_cache);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.param_hits, 0u);
  EXPECT_EQ(stats.param_inserts, 0u);
  EXPECT_EQ(stats.unrebindable_inserts, 0u);
  EXPECT_EQ(stats.sensitivity_rejects, 0u);
}

TEST_F(ParameterizedCacheTest, SkeletonEntriesInvisibleToExactProbes) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);
  workload::Workload w = MakeQ(5, 2, 27);
  algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
  ASSERT_NE(pq.skeleton, nullptr);

  const PlanCache::Key key =
      PlanCache::MakeKey(*pq.skeleton, 0, w.catalog, &store);
  PlanCache::ParamInfo info;
  info.slots = pq.slots;
  cache.InsertParam(key, w.catalog, info, Plan{});
  ASSERT_EQ(cache.size(), 1u);

  // The exact probe must not serve the skeleton entry even though the key
  // bytes match...
  PlanCache::Hit hit;
  EXPECT_FALSE(cache.Probe(key, w.catalog, &hit));

  // ...and an exact insert under the same key coexists rather than
  // replacing it; each probe flavor sees only its own entry.
  cache.Insert(key, w.catalog, Plan{});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Probe(key, w.catalog, &hit));
  EXPECT_TRUE(cache.ProbeParam(key, w.catalog, info, &hit));
}

TEST_F(ParameterizedCacheTest, SensitivityGuardRejectsOutOfBandBindings) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);  // default band: factor 4
  workload::Workload w = MakeQ(5, 2, 29);
  algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
  ASSERT_NE(pq.skeleton, nullptr);

  Optimizer ref(rules_.get(), &w.catalog, {});
  auto plan = ref.Optimize(*w.query);
  ASSERT_TRUE(plan.ok());

  const PlanCache::Key key =
      PlanCache::MakeKey(*pq.skeleton, 0, w.catalog, &store);
  PlanCache::ParamInfo selective;
  selective.slots = pq.slots;
  selective.guard_est = 0.01;
  cache.InsertParam(key, w.catalog, selective, *plan);
  ASSERT_EQ(cache.stats().param_inserts, 1u);

  // Same skeleton, wildly different estimated selectivity: the guard must
  // turn the probe away rather than serve a mis-fitted plan.
  PlanCache::ParamInfo broad = selective;
  broad.guard_est = 0.9;
  PlanCache::Hit hit;
  bool dropped_stale = false;
  bool guard_rejected = false;
  EXPECT_FALSE(cache.ProbeParam(key, w.catalog, broad, &hit, &dropped_stale,
                                &guard_rejected));
  EXPECT_TRUE(guard_rejected);
  EXPECT_EQ(cache.stats().sensitivity_rejects, 1u);

  // Fresh optimization under the rejected binding populates a per-band
  // variant; afterwards both bands are served.
  cache.InsertParam(key, w.catalog, broad, *plan);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.ProbeParam(key, w.catalog, broad, &hit));
  EXPECT_TRUE(cache.ProbeParam(key, w.catalog, selective, &hit));

  // A nearby estimate (within the 4x band) is served by the variant.
  PlanCache::ParamInfo nearby = selective;
  nearby.guard_est = 0.02;
  EXPECT_TRUE(cache.ProbeParam(key, w.catalog, nearby, &hit));

  // Band 0 disables the guard entirely.
  PlanCacheOptions open_opts;
  open_opts.param_band = 0;
  PlanCache open_cache(&store, open_opts);
  open_cache.InsertParam(key, w.catalog, selective, *plan);
  EXPECT_TRUE(open_cache.ProbeParam(key, w.catalog, broad, &hit));
}

TEST_F(ParameterizedCacheTest, UnattributablePlanConstantsFallBackToExact) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCache cache(&store);
  workload::Workload w = MakeQ(5, 2, 31);
  algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
  ASSERT_NE(pq.skeleton, nullptr);

  Optimizer ref(rules_.get(), &w.catalog, {});
  auto plan = ref.Optimize(*w.query);
  ASSERT_TRUE(plan.ok());

  // Lie about one binding value: the plan's constant no longer matches any
  // slot, so the insert must refuse to store markers.
  PlanCache::ParamInfo info;
  info.slots = pq.slots;
  const int64_t* original = std::get_if<int64_t>(&info.slots[0].value.v);
  ASSERT_NE(original, nullptr);
  info.slots[0].value = algebra::Scalar::Int(*original + 1000);
  const PlanCache::Key key =
      PlanCache::MakeKey(*pq.skeleton, 0, w.catalog, &store);
  cache.InsertParam(key, w.catalog, info, *plan);
  EXPECT_EQ(cache.stats().unrebindable_inserts, 1u);
  EXPECT_EQ(cache.stats().param_inserts, 0u);

  // The exact-only entry serves precisely its own binding...
  PlanCache::Hit hit;
  EXPECT_TRUE(cache.ProbeParam(key, w.catalog, info, &hit));
  EXPECT_EQ(Render(hit.plan), Render(*plan));

  // ...and never a different one (an unrebindable plan must not be bent
  // to fresh constants).
  PlanCache::ParamInfo other = info;
  other.slots[1].value = algebra::Scalar::Int(12345);
  EXPECT_FALSE(cache.ProbeParam(key, w.catalog, other, &hit));

  // Ambiguous slots (two indistinguishable comparison shapes) are equally
  // unrebindable: binding could swap their constants.
  PlanCache::ParamInfo ambiguous;
  ambiguous.slots = pq.slots;
  ambiguous.slots.push_back(pq.slots[0]);
  EXPECT_TRUE(algebra::SlotMatcher(ambiguous.slots).ambiguous());
  cache.InsertParam(key, w.catalog, ambiguous, *plan);
  EXPECT_EQ(cache.stats().unrebindable_inserts, 2u);
}

TEST_F(ParameterizedCacheTest, ByteBudgetCoversParameterizedEntries) {
  DescriptorStore store(&rules_->algebra->properties(), StoreMode::kSerial);
  PlanCacheOptions copt;
  copt.shards = 1;
  copt.max_entries = 0;
  copt.max_bytes = 2048;
  PlanCache cache(&store, copt);

  for (int i = 0; i < 8; ++i) {
    workload::Workload w = MakeQ(5, 2, static_cast<uint64_t>(70 + i));
    algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
    ASSERT_NE(pq.skeleton, nullptr);
    PlanCache::ParamInfo info;
    info.slots = pq.slots;
    const PlanCache::Key key =
        PlanCache::MakeKey(*pq.skeleton, 0, w.catalog, &store);
    cache.InsertParam(key, w.catalog, info, Plan{});
  }
  // Parameterized entries charge their skeleton key AND parameter vector
  // against the byte budget; eviction holds the cache under it.
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.bytes(), 2048u);
  EXPECT_GE(cache.size(), 1u);

  // An entry's accounted footprint exceeds the bare exact entry's by at
  // least the parameter vector.
  workload::Workload w = MakeQ(5, 2, 90);
  algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
  const PlanCache::Key key =
      PlanCache::MakeKey(*pq.skeleton, 0, w.catalog, &store);
  PlanCache cache_exact(&store, PlanCacheOptions{});
  PlanCache cache_param(&store, PlanCacheOptions{});
  cache_exact.Insert(key, w.catalog, Plan{});
  PlanCache::ParamInfo info;
  info.slots = pq.slots;
  cache_param.InsertParam(key, w.catalog, info, Plan{});
  EXPECT_GT(cache_param.bytes(), cache_exact.bytes());
}

TEST_F(ParameterizedCacheTest, ParamSelectivityTracksDomainAndConstant) {
  workload::Workload w = MakeQ(5, 2, 41);
  const algebra::Attr bc{"C1", "bc"};
  const int64_t domain = w.catalog.DistinctValues(bc);
  ASSERT_GT(domain, 1);

  using algebra::CmpOp;
  using algebra::ParamSlot;
  using algebra::Scalar;
  const auto est = [&](std::vector<ParamSlot> slots) {
    return volcano::ParamSelectivity(slots, w.catalog);
  };

  // Equality: 1/distinct, independent of the value.
  EXPECT_DOUBLE_EQ(est({{CmpOp::kEq, bc, false, Scalar::Int(1)}}),
                   1.0 / static_cast<double>(domain));
  EXPECT_DOUBLE_EQ(est({{CmpOp::kEq, bc, false, Scalar::Int(domain - 1)}}),
                   1.0 / static_cast<double>(domain));

  // Ranges: the constant's position in the domain drives the estimate.
  const double lt_small = est({{CmpOp::kLt, bc, false, Scalar::Int(1)}});
  const double lt_large =
      est({{CmpOp::kLt, bc, false, Scalar::Int(domain - 1)}});
  EXPECT_LT(lt_small, lt_large);
  const double gt_small = est({{CmpOp::kGt, bc, false, Scalar::Int(1)}});
  const double gt_large =
      est({{CmpOp::kGt, bc, false, Scalar::Int(domain - 1)}});
  EXPECT_GT(gt_small, gt_large);

  // A flipped comparison (constant on the left) mirrors the operator:
  // c < attr  ==  attr > c.
  EXPECT_DOUBLE_EQ(est({{CmpOp::kLt, bc, true, Scalar::Int(1)}}), gt_small);

  // Conjunctions multiply, and the product stays clamped into (0, 1].
  const double one = est({{CmpOp::kEq, bc, false, Scalar::Int(1)}});
  const double two = est({{CmpOp::kEq, bc, false, Scalar::Int(1)},
                          {CmpOp::kEq, bc, false, Scalar::Int(2)}});
  EXPECT_DOUBLE_EQ(two, one * one);
  EXPECT_GT(two, 0.0);
}

}  // namespace
}  // namespace prairie

// Unit tests for the Prairie core: the action language (expressions,
// statements, evaluation), helper registry, rule structures and rule-set
// validation.

#include <gtest/gtest.h>

#include "core/action.h"
#include "core/helpers.h"
#include "core/rules.h"
#include "core/ruleset.h"

namespace prairie::core {
namespace {

using algebra::Algebra;
using algebra::Descriptor;
using algebra::PatNode;
using algebra::PropertySchema;
using algebra::SortSpec;
using algebra::Value;
using algebra::ValueType;
using common::Status;

class ActionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.Add("cost", ValueType::kReal, true).ok());
    ASSERT_TRUE(schema_.Add("num_records", ValueType::kReal).ok());
    ASSERT_TRUE(schema_.Add("tuple_order", ValueType::kSort).ok());
    d1_ = Descriptor(&schema_);
    d2_ = Descriptor(&schema_);
    d3_ = Descriptor(&schema_);
    helpers_ = HelperRegistry::WithBuiltins();
    ctx_.slots = {&d1_, &d2_, &d3_};
    ctx_.helpers = helpers_.get();
  }

  EvalResult Ev(const ActionExprPtr& e) {
    auto r = Eval(*e, ctx_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : EvalResult{};
  }

  PropertySchema schema_;
  Descriptor d1_, d2_, d3_;
  std::shared_ptr<HelperRegistry> helpers_;
  EvalContext ctx_;
};

TEST_F(ActionTest, ConstAndArithmetic) {
  auto e = ActionExpr::Binary(
      BinOp::kAdd, ActionExpr::Const(Value::Int(2)),
      ActionExpr::Binary(BinOp::kMul, ActionExpr::Const(Value::Int(3)),
                         ActionExpr::Const(Value::Int(4))));
  EXPECT_EQ(Ev(e).value, Value::Int(14));
}

TEST_F(ActionTest, IntArithmeticStaysIntRealWidens) {
  auto int_sum = ActionExpr::Binary(BinOp::kSub,
                                    ActionExpr::Const(Value::Int(5)),
                                    ActionExpr::Const(Value::Int(3)));
  EXPECT_EQ(Ev(int_sum).value.type(), ValueType::kInt);
  auto real_sum = ActionExpr::Binary(BinOp::kAdd,
                                     ActionExpr::Const(Value::Real(1.5)),
                                     ActionExpr::Const(Value::Int(1)));
  EXPECT_EQ(Ev(real_sum).value.type(), ValueType::kReal);
}

TEST_F(ActionTest, DivisionByZeroFails) {
  auto e = ActionExpr::Binary(BinOp::kDiv, ActionExpr::Const(Value::Int(1)),
                              ActionExpr::Const(Value::Int(0)));
  EXPECT_FALSE(Eval(*e, ctx_).ok());
}

TEST_F(ActionTest, Comparisons) {
  auto lt = ActionExpr::Binary(BinOp::kLt, ActionExpr::Const(Value::Int(1)),
                               ActionExpr::Const(Value::Real(1.5)));
  EXPECT_EQ(Ev(lt).value, Value::Bool(true));
  auto eq = ActionExpr::Binary(
      BinOp::kEq, ActionExpr::Const(Value::Sort(SortSpec::DontCare())),
      ActionExpr::Const(Value::Sort(SortSpec::DontCare())));
  EXPECT_EQ(Ev(eq).value, Value::Bool(true));
}

TEST_F(ActionTest, BooleanShortCircuit) {
  // The right side would fail (reading an unset property through a
  // helper); short-circuiting must avoid evaluating it.
  auto bad = ActionExpr::Binary(BinOp::kDiv, ActionExpr::Const(Value::Int(1)),
                                ActionExpr::Const(Value::Int(0)));
  auto e = ActionExpr::Binary(BinOp::kAnd,
                              ActionExpr::Const(Value::Bool(false)), bad);
  EXPECT_EQ(Ev(e).value, Value::Bool(false));
  auto e2 = ActionExpr::Binary(BinOp::kOr,
                               ActionExpr::Const(Value::Bool(true)), bad);
  EXPECT_EQ(Ev(e2).value, Value::Bool(true));
}

TEST_F(ActionTest, UnaryOps) {
  auto not_true =
      ActionExpr::Unary(UnOp::kNot, ActionExpr::Const(Value::Bool(true)));
  EXPECT_EQ(Ev(not_true).value, Value::Bool(false));
  auto neg = ActionExpr::Unary(UnOp::kNeg, ActionExpr::Const(Value::Int(3)));
  EXPECT_EQ(Ev(neg).value, Value::Int(-3));
}

TEST_F(ActionTest, PropReadAndAssign) {
  ASSERT_TRUE(d1_.Set("num_records", Value::Real(100)).ok());
  ActionStmt stmt;
  stmt.target_slot = 2;  // D3
  stmt.target_prop = "cost";
  stmt.value = ActionExpr::Binary(BinOp::kMul,
                                  ActionExpr::Prop(0, "num_records"),
                                  ActionExpr::Const(Value::Int(2)));
  ASSERT_TRUE(Execute(stmt, ctx_).ok());
  EXPECT_DOUBLE_EQ(d3_.Get("cost")->AsReal(), 200.0);
}

TEST_F(ActionTest, WholeDescriptorCopy) {
  ASSERT_TRUE(d1_.Set("num_records", Value::Real(5)).ok());
  ActionStmt stmt;
  stmt.target_slot = 1;
  stmt.value = ActionExpr::Desc(0);
  ASSERT_TRUE(Execute(stmt, ctx_).ok());
  EXPECT_EQ(d2_, d1_);
}

TEST_F(ActionTest, WholeDescriptorCopyRequiresDescriptorRhs) {
  ActionStmt stmt;
  stmt.target_slot = 1;
  stmt.value = ActionExpr::Const(Value::Int(1));
  EXPECT_EQ(Execute(stmt, ctx_).code(), common::StatusCode::kTypeError);
}

TEST_F(ActionTest, DescriptorCannotBeAssignedToProperty) {
  ActionStmt stmt;
  stmt.target_slot = 1;
  stmt.target_prop = "cost";
  stmt.value = ActionExpr::Desc(0);
  EXPECT_EQ(Execute(stmt, ctx_).code(), common::StatusCode::kTypeError);
}

TEST_F(ActionTest, UnboundSlotFails) {
  ctx_.slots[0] = nullptr;
  auto e = ActionExpr::Prop(0, "cost");
  EXPECT_FALSE(Eval(*e, ctx_).ok());
}

TEST_F(ActionTest, EvalTestDefaultsTrue) {
  EXPECT_TRUE(*EvalTest(nullptr, ctx_));
  EXPECT_FALSE(*EvalTest(ActionExpr::Const(Value::Bool(false)), ctx_));
}

TEST_F(ActionTest, ToStringRendering) {
  auto e = ActionExpr::Binary(BinOp::kAdd, ActionExpr::Prop(3, "cost"),
                              ActionExpr::Call("log", {ActionExpr::Prop(
                                                          3, "num_records")}));
  EXPECT_EQ(e->ToString(), "(D4.cost + log(D4.num_records))");
  ActionStmt s;
  s.target_slot = 4;
  s.target_prop = "cost";
  s.value = e;
  EXPECT_EQ(s.ToString(), "D5.cost = (D4.cost + log(D4.num_records));");
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

TEST_F(ActionTest, BuiltinMathHelpers) {
  auto call = [&](const char* fn, std::vector<ActionExprPtr> args) {
    return Ev(ActionExpr::Call(fn, std::move(args))).value;
  };
  EXPECT_DOUBLE_EQ(call("log", {ActionExpr::Const(Value::Real(1.0))}).AsReal(),
                   0.0);
  EXPECT_DOUBLE_EQ(
      call("log2", {ActionExpr::Const(Value::Real(8.0))}).AsReal(), 3.0);
  EXPECT_DOUBLE_EQ(
      call("min", {ActionExpr::Const(Value::Int(4)),
                   ActionExpr::Const(Value::Int(2))})
          .AsReal(),
      2.0);
  EXPECT_DOUBLE_EQ(
      call("max", {ActionExpr::Const(Value::Int(4)),
                   ActionExpr::Const(Value::Int(2))})
          .AsReal(),
      4.0);
  EXPECT_DOUBLE_EQ(
      call("pow", {ActionExpr::Const(Value::Int(2)),
                   ActionExpr::Const(Value::Int(10))})
          .AsReal(),
      1024.0);
  EXPECT_DOUBLE_EQ(
      call("abs", {ActionExpr::Const(Value::Real(-2.5))}).AsReal(), 2.5);
  EXPECT_DOUBLE_EQ(
      call("ceil", {ActionExpr::Const(Value::Real(1.2))}).AsReal(), 2.0);
  EXPECT_DOUBLE_EQ(
      call("floor", {ActionExpr::Const(Value::Real(1.8))}).AsReal(), 1.0);
}

TEST(HelperRegistry, UnknownHelperFails) {
  auto reg = HelperRegistry::WithBuiltins();
  EvalContext ctx;
  ctx.helpers = reg.get();
  EXPECT_FALSE(reg->Invoke("nope", {}, ctx).ok());
}

TEST(HelperRegistry, ArityChecked) {
  auto reg = HelperRegistry::WithBuiltins();
  EvalContext ctx;
  ctx.helpers = reg.get();
  EXPECT_EQ(reg->Invoke("log", {}, ctx).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(HelperRegistry, DuplicateRegistrationRejected) {
  auto reg = HelperRegistry::WithBuiltins();
  auto fn = [](const std::vector<EvalResult>&,
               const EvalContext&) -> common::Result<Value> {
    return Value::Int(1);
  };
  EXPECT_FALSE(reg->Register("log", 1, fn).ok());
  EXPECT_TRUE(reg->Register("custom", 0, fn).ok());
  EXPECT_TRUE(reg->Contains("custom"));
}

// ---------------------------------------------------------------------------
// Rule-set validation
// ---------------------------------------------------------------------------

class RuleSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rules_.algebra = std::make_shared<Algebra>();
    rules_.helpers = HelperRegistry::WithBuiltins();
    auto* schema = rules_.algebra->mutable_properties();
    ASSERT_TRUE(schema->Add("cost", ValueType::kReal, true).ok());
    ASSERT_TRUE(schema->Add("tuple_order", ValueType::kSort).ok());
    join_ = *rules_.algebra->RegisterOperator("JOIN", 2);
    sort_ = *rules_.algebra->RegisterOperator("SORT", 1);
    nl_ = *rules_.algebra->RegisterAlgorithm("Nested_loops", 2);
    ms_ = *rules_.algebra->RegisterAlgorithm("Merge_sort", 1);
  }

  TRule CommuteRule() {
    TRule r;
    r.name = "commute";
    r.lhs = PatNode::Op(join_, 2, [] {
      std::vector<algebra::PatNodePtr> kids;
      kids.push_back(PatNode::Stream(1, 0));
      kids.push_back(PatNode::Stream(2, 1));
      return kids;
    }());
    r.rhs = PatNode::Op(join_, 3, [] {
      std::vector<algebra::PatNodePtr> kids;
      kids.push_back(PatNode::Stream(2, 1));
      kids.push_back(PatNode::Stream(1, 0));
      return kids;
    }());
    ActionStmt copy;
    copy.target_slot = 3;
    copy.value = ActionExpr::Desc(2);
    r.post_test.push_back(copy);
    r.num_slots = 4;
    return r;
  }

  RuleSet rules_;
  algebra::OpId join_, sort_, nl_, ms_;
};

TEST_F(RuleSetTest, ValidRuleSetPasses) {
  rules_.trules.push_back(CommuteRule());
  IRule ir = MakeIRuleSkeleton("nl", *rules_.algebra, join_, nl_, {true});
  ActionStmt s;
  s.target_slot = ir.alg_slot;
  s.target_prop = "cost";
  s.value = ActionExpr::Const(Value::Real(1));
  ir.post_opt.push_back(s);
  rules_.irules.push_back(std::move(ir));
  EXPECT_TRUE(rules_.Validate().ok()) << rules_.Validate().ToString();
}

TEST_F(RuleSetTest, LhsDescriptorAssignmentRejected) {
  TRule r = CommuteRule();
  // Assigning D3 (the LHS JOIN descriptor) violates the model.
  r.post_test[0].target_slot = 2;
  rules_.trules.push_back(std::move(r));
  common::Status st = rules_.Validate();
  EXPECT_EQ(st.code(), common::StatusCode::kRuleError);
  EXPECT_NE(st.message().find("never changed"), std::string::npos);
}

TEST_F(RuleSetTest, RhsOnlyStreamRejected) {
  TRule r = CommuteRule();
  r.rhs->children[0]->stream_var = 3;  // ?3 not bound on the LHS.
  rules_.trules.push_back(std::move(r));
  EXPECT_FALSE(rules_.Validate().ok());
}

TEST_F(RuleSetTest, NonLinearLhsRejected) {
  TRule r = CommuteRule();
  r.lhs->children[1]->stream_var = 1;   // ?1 twice.
  r.lhs->children[1]->desc_slot = 5;
  rules_.trules.push_back(std::move(r));
  EXPECT_FALSE(rules_.Validate().ok());
}

TEST_F(RuleSetTest, UnknownPropertyRejected) {
  TRule r = CommuteRule();
  r.post_test[0].target_prop = "no_such_property";
  r.post_test[0].value = ActionExpr::Const(Value::Int(1));
  rules_.trules.push_back(std::move(r));
  EXPECT_FALSE(rules_.Validate().ok());
}

TEST_F(RuleSetTest, UnknownHelperRejected) {
  TRule r = CommuteRule();
  r.test = ActionExpr::Call("mystery_fn", {});
  rules_.trules.push_back(std::move(r));
  EXPECT_FALSE(rules_.Validate().ok());
}

TEST_F(RuleSetTest, AlgorithmInTRuleRejected) {
  TRule r = CommuteRule();
  r.rhs->op = nl_;
  rules_.trules.push_back(std::move(r));
  common::Status st = rules_.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("abstract operators"), std::string::npos);
}

TEST_F(RuleSetTest, IRuleTestCannotReadFreshSlots) {
  IRule ir = MakeIRuleSkeleton("nl", *rules_.algebra, join_, nl_, {true});
  // The test runs before pre-opt: D4 (fresh) is not yet bound.
  ir.test = ActionExpr::Prop(ir.rhs_input_slots[0], "cost");
  rules_.irules.push_back(std::move(ir));
  EXPECT_FALSE(rules_.Validate().ok());
}

TEST_F(RuleSetTest, IRuleArityMismatchRejected) {
  IRule ir = MakeIRuleSkeleton("bad", *rules_.algebra, sort_, nl_, {});
  ir.arity = 1;  // SORT is unary but Nested_loops is binary.
  ir.rhs_input_slots = {0};
  rules_.irules.push_back(std::move(ir));
  EXPECT_FALSE(rules_.Validate().ok());
}

TEST_F(RuleSetTest, EnforcerOperatorDetection) {
  // SORT -> Null makes SORT an enforcer-operator.
  IRule null_rule =
      MakeIRuleSkeleton("null_sort", *rules_.algebra, sort_,
                        rules_.algebra->null_alg(), {true});
  rules_.irules.push_back(std::move(null_rule));
  IRule ms = MakeIRuleSkeleton("merge_sort", *rules_.algebra, sort_, ms_, {});
  rules_.irules.push_back(std::move(ms));
  auto enforcers = rules_.EnforcerOperators();
  ASSERT_EQ(enforcers.size(), 1u);
  EXPECT_EQ(enforcers[0], sort_);
  EXPECT_TRUE(rules_.IsEnforcerOperator(sort_));
  EXPECT_FALSE(rules_.IsEnforcerOperator(join_));
  EXPECT_EQ(rules_.IRulesFor(sort_).size(), 2u);
}

TEST_F(RuleSetTest, DuplicateRuleNamesRejected) {
  rules_.trules.push_back(CommuteRule());
  rules_.trules.push_back(CommuteRule());
  EXPECT_FALSE(rules_.Validate().ok());
}

TEST_F(RuleSetTest, ToStringMentionsEverything) {
  rules_.trules.push_back(CommuteRule());
  std::string text = rules_.ToString();
  EXPECT_NE(text.find("JOIN"), std::string::npos);
  EXPECT_NE(text.find("commute"), std::string::npos);
  EXPECT_NE(text.find("property cost : cost"), std::string::npos);
}

TEST(IRuleSkeleton, SlotLayout) {
  Algebra algebra;
  auto join = *algebra.RegisterOperator("JOIN", 2);
  auto nl = *algebra.RegisterAlgorithm("Nested_loops", 2);
  IRule r = MakeIRuleSkeleton("nl", algebra, join, nl, {true, false});
  EXPECT_EQ(r.arity, 2);
  EXPECT_EQ(r.op_slot(), 2);
  EXPECT_EQ(r.rhs_input_slots, (std::vector<int>{3, 1}));
  EXPECT_EQ(r.alg_slot, 4);
  EXPECT_EQ(r.num_slots, 5);
  EXPECT_TRUE(r.input_reannotated(0));
  EXPECT_FALSE(r.input_reannotated(1));
}

}  // namespace
}  // namespace prairie::core

// Unit tests for the catalog: stored files, indices, statistics and
// selectivity estimation.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace prairie::catalog {
namespace {

using algebra::Attr;
using algebra::CmpOp;
using algebra::Predicate;
using algebra::PredicateRef;
using algebra::Scalar;
using algebra::Term;

StoredFile MakeEmp() {
  std::vector<AttributeDef> attrs;
  attrs.push_back({"oid", algebra::ValueType::kInt, 1000, "", false, 1.0});
  attrs.push_back({"dept", algebra::ValueType::kInt, 20, "", false, 1.0});
  attrs.push_back({"mgr", algebra::ValueType::kInt, 1000, "Emp", false, 1.0});
  attrs.push_back({"kids", algebra::ValueType::kInt, 50, "", true, 2.5});
  StoredFile f("Emp", std::move(attrs), 1000, 64);
  f.AddIndex(IndexDef{"dept", IndexDef::Kind::kBtree});
  return f;
}

TEST(StoredFile, AttributeLookup) {
  StoredFile f = MakeEmp();
  EXPECT_NE(f.FindAttr("dept"), nullptr);
  EXPECT_EQ(f.FindAttr("nope"), nullptr);
  EXPECT_FALSE(f.RequireAttr("nope").ok());
  EXPECT_TRUE(f.FindAttr("mgr")->is_reference());
  EXPECT_TRUE(f.FindAttr("kids")->set_valued);
}

TEST(StoredFile, Indexes) {
  StoredFile f = MakeEmp();
  EXPECT_TRUE(f.HasIndexOn("dept"));
  EXPECT_FALSE(f.HasIndexOn("oid"));
  ASSERT_NE(f.FindIndexOn("dept"), nullptr);
  EXPECT_EQ(f.FindIndexOn("dept")->kind, IndexDef::Kind::kBtree);
}

TEST(StoredFile, QualifiedAttrs) {
  StoredFile f = MakeEmp();
  algebra::AttrList attrs = f.QualifiedAttrs();
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_EQ(attrs[0].ToString(), "Emp.oid");
  EXPECT_EQ(attrs[1].cls, "Emp");
}

TEST(Catalog, AddFindRequire) {
  Catalog cat;
  ASSERT_TRUE(cat.AddFile(MakeEmp()).ok());
  EXPECT_EQ(cat.AddFile(MakeEmp()).code(),
            common::StatusCode::kAlreadyExists);
  EXPECT_NE(cat.Find("Emp"), nullptr);
  EXPECT_EQ(cat.Find("Dept"), nullptr);
  EXPECT_FALSE(cat.Require("Dept").ok());
  EXPECT_EQ(cat.FileNames(), std::vector<std::string>{"Emp"});
}

TEST(Catalog, StatsQueries) {
  Catalog cat;
  ASSERT_TRUE(cat.AddFile(MakeEmp()).ok());
  EXPECT_EQ(cat.DistinctValues(Attr{"Emp", "dept"}), 20);
  EXPECT_EQ(cat.DistinctValues(Attr{"Emp", "nope"}), 100);  // Default.
  EXPECT_EQ(cat.DistinctValues(Attr{"Nope", "x"}), 100);
  EXPECT_TRUE(cat.HasIndexOn(Attr{"Emp", "dept"}));
  EXPECT_FALSE(cat.HasIndexOn(Attr{"Emp", "oid"}));
}

class SelectivityTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(cat_.AddFile(MakeEmp()).ok()); }
  Catalog cat_;
};

TEST_F(SelectivityTest, NullAndConstants) {
  EXPECT_DOUBLE_EQ(EstimateSelectivity(nullptr, cat_), 1.0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(Predicate::True(), cat_), 1.0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(Predicate::False(), cat_), 0.0);
}

TEST_F(SelectivityTest, EqualityUsesDistinctCounts) {
  PredicateRef p = Predicate::EqConst(Attr{"Emp", "dept"}, Scalar::Int(3));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(p, cat_), 1.0 / 20);
}

TEST_F(SelectivityTest, EquiJoinUsesMaxDistinct) {
  PredicateRef p = Predicate::EqAttrs(Attr{"Emp", "dept"},
                                      Attr{"Emp", "oid"});
  EXPECT_DOUBLE_EQ(EstimateSelectivity(p, cat_), 1.0 / 1000);
}

TEST_F(SelectivityTest, RangeIsOneThird) {
  PredicateRef p = Predicate::Cmp(CmpOp::kLt,
                                  Term::MakeAttr(Attr{"Emp", "dept"}),
                                  Term::MakeConst(Scalar::Int(5)));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(p, cat_), 1.0 / 3);
}

TEST_F(SelectivityTest, NotEqualIsComplement) {
  PredicateRef p = Predicate::Cmp(CmpOp::kNe,
                                  Term::MakeAttr(Attr{"Emp", "dept"}),
                                  Term::MakeConst(Scalar::Int(5)));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(p, cat_), 1.0 - 1.0 / 20);
}

TEST_F(SelectivityTest, ConjunctionMultiplies) {
  PredicateRef a = Predicate::EqConst(Attr{"Emp", "dept"}, Scalar::Int(1));
  PredicateRef b = Predicate::EqConst(Attr{"Emp", "oid"}, Scalar::Int(2));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(Predicate::And({a, b}), cat_),
                   (1.0 / 20) * (1.0 / 1000));
}

TEST_F(SelectivityTest, DisjunctionInclusionExclusion) {
  PredicateRef a = Predicate::EqConst(Attr{"Emp", "dept"}, Scalar::Int(1));
  double s = 1.0 / 20;
  EXPECT_DOUBLE_EQ(EstimateSelectivity(Predicate::Or({a, a}), cat_),
                   1.0 - (1.0 - s) * (1.0 - s));
}

TEST_F(SelectivityTest, NotIsComplement) {
  PredicateRef a = Predicate::EqConst(Attr{"Emp", "dept"}, Scalar::Int(1));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(Predicate::Not(a), cat_),
                   1.0 - 1.0 / 20);
}

}  // namespace
}  // namespace prairie::catalog

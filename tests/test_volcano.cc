// Unit tests for the Volcano search engine: memo deduplication and
// merging, transformation closure, top-down costing, physical-property
// requirements, enforcers, and branch-and-bound pruning.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "optimizers/oodb.h"
#include "p2v/translator.h"
#include "volcano/engine.h"
#include "volcano/inspect.h"
#include "volcano/plancache.h"
#include "volcano/profile.h"
#include "workload/workload.h"

namespace prairie::volcano {
namespace {

using algebra::Algebra;
using algebra::Attr;
using algebra::Descriptor;
using algebra::Expr;
using algebra::ExprPtr;
using algebra::OpId;
using algebra::PatNode;
using algebra::SortSpec;
using algebra::Value;
using algebra::ValueType;
using common::Status;

// A micro-optimizer: RET/JOIN with Scan and NL algorithms, plus a Sorter
// enforcer. Costs: Scan = card; NL = outer + card_outer * inner;
// Sorter = input + n log n. Only "order" is physical; "card" is logical.
class MicroOptimizer : public ::testing::Test {
 protected:
  void SetUp() override {
    rules_.name = "micro";
    rules_.algebra = std::make_shared<Algebra>();
    auto* schema = rules_.algebra->mutable_properties();
    ASSERT_TRUE(schema->Add("order", ValueType::kSort).ok());
    ASSERT_TRUE(schema->Add("card", ValueType::kReal).ok());
    ASSERT_TRUE(schema->Add("tag", ValueType::kString).ok());
    ASSERT_TRUE(schema->Add("cost", ValueType::kReal, true).ok());
    order_ = *schema->Find("order");
    card_ = *schema->Find("card");
    tag_ = *schema->Find("tag");
    cost_ = *schema->Find("cost");
    ret_ = *rules_.algebra->RegisterOperator("RET", 1);
    join_ = *rules_.algebra->RegisterOperator("JOIN", 2);
    scan_ = *rules_.algebra->RegisterAlgorithm("Scan", 1);
    nl_ = *rules_.algebra->RegisterAlgorithm("NL", 2);
    sorter_ = *rules_.algebra->RegisterAlgorithm("Sorter", 1);

    rules_.cost_prop = cost_;
    rules_.phys_props = {order_};
    rules_.logical_props = {card_};

    // trans: JOIN(a, b) -> JOIN(b, a)
    TransRule commute;
    commute.name = "commute";
    commute.lhs = PatNode::Op(join_, 2, MakeStreams());
    commute.rhs = PatNode::Op(join_, 3, MakeStreamsSwapped());
    commute.num_slots = 4;
    commute.apply = [](BindingView& bv) -> Status {
      bv.slot(3) = bv.slot(2);
      return Status::OK();
    };
    rules_.trans_rules.push_back(std::move(commute));

    // impl: RET -> Scan. Cost = card of the file; no order produced.
    {
      ImplRule r;
      r.name = "scan";
      r.op = ret_;
      r.alg = scan_;
      r.arity = 1;
      r.rhs_input_slots = {0};
      r.alg_slot = 2;
      r.num_slots = 3;
      auto card = card_;
      auto cost = cost_;
      auto order = order_;
      r.pre_opt = [card, cost, order](BindingView& bv) -> Status {
        bv.slot(2) = bv.slot(1);
        bv.slot(2).SetUnchecked(order, Value::Sort(SortSpec::DontCare()));
        return Status::OK();
      };
      r.post_opt = [card, cost](BindingView& bv) -> Status {
        bv.slot(2).SetUnchecked(
            cost, Value::Real(bv.slot(0).Get(card).ToReal().ValueOr(0)));
        return Status::OK();
      };
      rules_.impl_rules.push_back(std::move(r));
    }

    // impl: JOIN -> NL. Cost = outer_cost + outer_card * inner_cost.
    {
      ImplRule r;
      r.name = "nl";
      r.op = join_;
      r.alg = nl_;
      r.arity = 2;
      r.rhs_input_slots = {3, 1};  // Fresh outer descriptor D4.
      r.alg_slot = 4;
      r.num_slots = 5;
      auto card = card_;
      auto cost = cost_;
      auto order = order_;
      r.pre_opt = [order](BindingView& bv) -> Status {
        bv.slot(4) = bv.slot(2);
        bv.slot(3) = bv.slot(0);
        bv.slot(3).SetUnchecked(order, bv.slot(2).Get(order));
        return Status::OK();
      };
      r.post_opt = [card, cost](BindingView& bv) -> Status {
        double outer_cost = bv.slot(3).Get(cost).ToReal().ValueOr(0);
        double outer_card = bv.slot(3).Get(card).ToReal().ValueOr(0);
        double inner_cost = bv.slot(1).Get(cost).ToReal().ValueOr(0);
        bv.slot(4).SetUnchecked(
            cost, Value::Real(outer_cost + outer_card * inner_cost));
        return Status::OK();
      };
      rules_.impl_rules.push_back(std::move(r));
    }

    // Enforcer: Sorter for "order".
    {
      Enforcer e;
      e.name = "sorter";
      e.alg = sorter_;
      e.prop = order_;
      auto card = card_;
      auto cost = cost_;
      e.pre_opt = [](BindingView& bv) -> Status {
        bv.slot(Enforcer::kAlgSlot) = bv.slot(Enforcer::kOpSlot);
        return Status::OK();
      };
      e.post_opt = [card, cost](BindingView& bv) -> Status {
        double n =
            bv.slot(Enforcer::kAlgSlot).Get(card).ToReal().ValueOr(0);
        double in =
            bv.slot(Enforcer::kInputSlot).Get(cost).ToReal().ValueOr(0);
        bv.slot(Enforcer::kAlgSlot)
            .SetUnchecked(cost,
                          Value::Real(in + (n <= 1 ? 0 : n * std::log(n))));
        return Status::OK();
      };
      rules_.enforcers.push_back(std::move(e));
    }

    ASSERT_TRUE(rules_.Finalize().ok()) << rules_.Finalize().ToString();
  }

  std::vector<algebra::PatNodePtr> MakeStreams() {
    std::vector<algebra::PatNodePtr> kids;
    kids.push_back(PatNode::Stream(1, 0));
    kids.push_back(PatNode::Stream(2, 1));
    return kids;
  }
  std::vector<algebra::PatNodePtr> MakeStreamsSwapped() {
    std::vector<algebra::PatNodePtr> kids;
    kids.push_back(PatNode::Stream(2, 1));
    kids.push_back(PatNode::Stream(1, 0));
    return kids;
  }

  Descriptor Desc() { return Descriptor(&rules_.algebra->properties()); }

  ExprPtr RetOf(const std::string& file, double card) {
    Descriptor leaf = Desc();
    leaf.SetUnchecked(card_, Value::Real(card));
    ExprPtr f = Expr::MakeFile(file, leaf);
    Descriptor d = Desc();
    d.SetUnchecked(card_, Value::Real(card));
    d.SetUnchecked(tag_, Value::Str(file));
    std::vector<ExprPtr> kids;
    kids.push_back(std::move(f));
    return Expr::MakeOp(ret_, std::move(kids), std::move(d));
  }

  ExprPtr JoinOf(ExprPtr l, ExprPtr r, double card) {
    Descriptor d = Desc();
    d.SetUnchecked(card_, Value::Real(card));
    std::vector<ExprPtr> kids;
    kids.push_back(std::move(l));
    kids.push_back(std::move(r));
    return Expr::MakeOp(join_, std::move(kids), std::move(d));
  }

  RuleSet rules_;
  catalog::Catalog catalog_;
  algebra::PropertyId order_, card_, tag_, cost_;
  OpId ret_, join_, scan_, nl_, sorter_;
};

TEST_F(MicroOptimizer, OptimizesSingleRet) {
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*RetOf("R", 100));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_DOUBLE_EQ(plan->cost, 100);
  EXPECT_EQ(plan->root->alg, scan_);
}

TEST_F(MicroOptimizer, CommutePicksCheaperOuter) {
  // NL(big, small) costs 1000 + 1000*10; NL(small, big) costs 10+10*1000.
  // The commute rule must expose the cheaper order.
  Optimizer o(&rules_, &catalog_);
  auto plan =
      o.Optimize(*JoinOf(RetOf("Big", 1000), RetOf("Small", 10), 500));
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->cost, 10 + 10 * 1000);
  // The outer child of the chosen NL is the small scan.
  ASSERT_EQ(plan->root->children.size(), 2u);
  EXPECT_EQ(plan->root->children[0]->desc.Get(tag_), Value::Str("Small"));
}

TEST_F(MicroOptimizer, MemoDeduplicatesCommutedExpressions) {
  Optimizer o(&rules_, &catalog_);
  auto plan =
      o.Optimize(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5));
  ASSERT_TRUE(plan.ok());
  // Groups: file A, RET A, file B, RET B, JOIN -> 5. Commuting the join
  // adds an expression to the join group, not a new group.
  EXPECT_EQ(o.stats().groups, 5u);
  const Group& g = o.memo().group(4);
  (void)g;
  EXPECT_EQ(o.stats().mexprs, 6u);  // 5 originals + 1 commuted join.
  EXPECT_EQ(o.stats().trans_fired, 1u);
  EXPECT_EQ(o.stats().NumTransMatched(), 1u);
}

TEST_F(MicroOptimizer, RequiredOrderTriggersEnforcer) {
  Optimizer o(&rules_, &catalog_);
  Descriptor req = Desc();
  SortSpec by_a = SortSpec::On(Attr{"R", "a"});
  req.SetUnchecked(order_, Value::Sort(by_a));
  auto plan = o.Optimize(*RetOf("R", 100), req);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Sorter on top of Scan: 100 + 100 ln 100.
  EXPECT_EQ(plan->root->alg, sorter_);
  EXPECT_NEAR(plan->cost, 100 + 100 * std::log(100.0), 1e-9);
  EXPECT_GE(o.stats().enforcer_attempts, 1u);
  // The plan reports the enforced order.
  EXPECT_TRUE(plan->root->desc.Get(order_).AsSort().Satisfies(by_a));
}

TEST_F(MicroOptimizer, DontCareRequirementNeedsNoEnforcer) {
  Optimizer o(&rules_, &catalog_);
  Descriptor req = Desc();
  req.SetUnchecked(order_, Value::Sort(SortSpec::DontCare()));
  auto plan = o.Optimize(*RetOf("R", 100), req);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->alg, scan_);
  EXPECT_DOUBLE_EQ(plan->cost, 100);
}

TEST_F(MicroOptimizer, PruningDoesNotChangeTheAnswer) {
  ExprPtr tree = JoinOf(JoinOf(RetOf("A", 50), RetOf("B", 40), 30),
                        RetOf("C", 20), 10);
  OptimizerOptions pruned;
  pruned.prune = true;
  OptimizerOptions full;
  full.prune = false;
  Optimizer op(&rules_, &catalog_, pruned);
  Optimizer of(&rules_, &catalog_, full);
  auto pp = op.Optimize(*tree);
  auto pf = of.Optimize(*tree->Clone());
  ASSERT_TRUE(pp.ok());
  ASSERT_TRUE(pf.ok());
  EXPECT_DOUBLE_EQ(pp->cost, pf->cost);
  // Pruning must not cost more plans than the full search.
  EXPECT_LE(op.stats().plans_costed, of.stats().plans_costed);
}

TEST_F(MicroOptimizer, InitialCostLimitCanMakeSearchInfeasible) {
  OptimizerOptions opts;
  opts.initial_cost_limit = 5;  // Scan of R costs 100 > 5.
  Optimizer o(&rules_, &catalog_, opts);
  auto plan = o.Optimize(*RetOf("R", 100));
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), common::StatusCode::kOptimizeError);
}

TEST_F(MicroOptimizer, MemoLimitSurfacesResourceExhausted) {
  OptimizerOptions opts;
  opts.memo_limits.max_groups = 2;
  Optimizer o(&rules_, &catalog_, opts);
  auto plan = o.Optimize(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5));
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), common::StatusCode::kResourceExhausted);
}

TEST_F(MicroOptimizer, AlgorithmInInputTreeRejected) {
  Descriptor d = Desc();
  std::vector<ExprPtr> kids;
  kids.push_back(Expr::MakeFile("R", Desc()));
  ExprPtr bad = Expr::MakeOp(scan_, std::move(kids), d);
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*bad);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(MicroOptimizer, ExpandOnlyCountsEquivalenceClasses) {
  Optimizer o(&rules_, &catalog_);
  auto groups =
      o.ExpandOnly(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5));
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(*groups, 5u);
  EXPECT_EQ(o.stats().plans_costed, 0u);
}

TEST_F(MicroOptimizer, WinnersAreMemoized) {
  // Optimizing the same shared subtree twice must not double the costed
  // plans: A JOIN A reuses the winner for RET(A).
  Optimizer o(&rules_, &catalog_);
  ExprPtr tree = JoinOf(RetOf("A", 10), RetOf("A", 10), 5);
  auto plan = o.Optimize(*tree);
  ASSERT_TRUE(plan.ok());
  // Both join inputs are the SAME group (deduplicated).
  EXPECT_EQ(o.stats().groups, 3u);  // file A, RET A, JOIN.
}

TEST_F(MicroOptimizer, ConditionFalseSkipsRule) {
  rules_.impl_rules[1].condition = [](BindingView&) -> common::Result<bool> {
    return false;
  };
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5));
  EXPECT_FALSE(plan.ok());  // No join implementation applies.
}

TEST_F(MicroOptimizer, RuleErrorsPropagate) {
  rules_.impl_rules[0].post_opt = [](BindingView&) -> Status {
    return Status::RuleError("intentional failure");
  };
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*RetOf("R", 1));
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("intentional failure"),
            std::string::npos);
}

TEST_F(MicroOptimizer, MissingCostAssignmentIsARuleError) {
  rules_.impl_rules[0].post_opt = nullptr;
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*RetOf("R", 1));
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("cost"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Memo structure
// ---------------------------------------------------------------------------

TEST_F(MicroOptimizer, MemoCopyInDeduplicatesIdenticalSubtrees) {
  Memo memo(&rules_, MemoLimits{});
  ExprPtr tree = JoinOf(RetOf("A", 10), RetOf("A", 10), 5);
  auto g = memo.CopyIn(*tree);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(memo.NumGroups(), 3u);
  EXPECT_EQ(memo.NumExprs(), 3u);
}

TEST_F(MicroOptimizer, MemoInsertDuplicateIsNoOp) {
  Memo memo(&rules_, MemoLimits{});
  GroupId g = *memo.CopyIn(*RetOf("A", 10));
  MExpr dup = memo.group(g).exprs[0];
  auto added = memo.InsertInto(g, dup);
  ASSERT_TRUE(added.ok());
  EXPECT_FALSE(*added);
  EXPECT_EQ(memo.NumExprs(), 2u);
}

TEST_F(MicroOptimizer, MemoMergesProvablyEqualGroups) {
  Memo memo(&rules_, MemoLimits{});
  GroupId g1 = *memo.CopyIn(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5));
  // An unrelated group that we then prove equal to g1 by inserting g1's
  // root expression into it.
  GroupId g2 = *memo.CopyIn(*RetOf("C", 30));
  size_t before = memo.NumGroups();
  MExpr root = memo.group(g1).exprs[0];
  ASSERT_TRUE(memo.InsertInto(g2, root).ok());
  EXPECT_EQ(memo.NumGroups(), before - 1);
  EXPECT_EQ(memo.Find(g1), memo.Find(g2));
  EXPECT_GT(memo.merge_epoch(), 0u);
}

TEST_F(MicroOptimizer, SeventyTransRulesDoNotAliasAppliedBits) {
  // Regression for the applied-rule bookkeeping: with 70 trans_rules the
  // live rule's index (69) used to alias index 69 % 64 == 5 in the old
  // single-uint64_t applied mask, so after the dead clone at index 5 was
  // attempted the real commute at index 69 was skipped and the optimizer
  // kept the expensive join order (1000 + 1000*10 instead of 10 + 10*1000).
  TransRule live = std::move(rules_.trans_rules[0]);
  rules_.trans_rules.clear();
  for (int i = 0; i < 69; ++i) {
    TransRule dead;
    dead.name = "dead_commute_" + std::to_string(i);
    dead.lhs = PatNode::Op(join_, 2, MakeStreams());
    dead.rhs = PatNode::Op(join_, 3, MakeStreamsSwapped());
    dead.num_slots = 4;
    dead.condition = [](BindingView&) -> common::Result<bool> {
      return false;
    };
    dead.apply = [](BindingView&) -> Status {
      return Status::RuleError("dead clone must never fire");
    };
    rules_.trans_rules.push_back(std::move(dead));
  }
  rules_.trans_rules.push_back(std::move(live));
  ASSERT_EQ(rules_.trans_rules.size(), 70u);
  ASSERT_TRUE(rules_.Finalize().ok());

  Optimizer o(&rules_, &catalog_);
  auto plan =
      o.Optimize(*JoinOf(RetOf("Big", 1000), RetOf("Small", 10), 500));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_DOUBLE_EQ(plan->cost, 10 + 10 * 1000);
  EXPECT_EQ(o.stats().trans_fired, 1u);  // Only rule 69 ever fires.
  ASSERT_EQ(plan->root->children.size(), 2u);
  EXPECT_EQ(plan->root->children[0]->desc.Get(tag_), Value::Str("Small"));
}

TEST_F(MicroOptimizer, MergeUnderInterningKeepsIdsConsistent) {
  Memo memo(&rules_, MemoLimits{});
  GroupId g1 = *memo.CopyIn(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5));
  GroupId g2 = *memo.CopyIn(*RetOf("C", 30));
  size_t groups_before = memo.NumGroups();
  // Equal descriptors interned through independent CopyIn calls share ids,
  // so re-copying the RET(A) subtree dedups into g1's subgroup: no new
  // groups appear.
  GroupId ga = *memo.CopyIn(*RetOf("A", 10));
  EXPECT_EQ(memo.NumGroups(), groups_before);
  const size_t interned_before = memo.store()->size();

  MExpr root = memo.group(g1).exprs[0];
  ASSERT_TRUE(memo.InsertInto(g2, root).ok());
  EXPECT_EQ(memo.Find(g1), memo.Find(g2));
  EXPECT_EQ(memo.NumGroups(), groups_before - 1);
  // Merging rewires groups without minting descriptor values: the store
  // did not grow.
  EXPECT_EQ(memo.store()->size(), interned_before);

  // Every expression in the surviving groups still round-trips through the
  // store with its cached hash, and winners were invalidated by the merge.
  for (GroupId gid : {memo.Find(g1), memo.Find(ga)}) {
    const Group& g = memo.group(gid);
    EXPECT_TRUE(g.winners.empty());
    ASSERT_NE(g.stream_desc, algebra::kInvalidDescriptorId);
    for (const MExpr& m : g.exprs) {
      ASSERT_NE(m.args, algebra::kInvalidDescriptorId);
      ASSERT_NE(m.arg_key, algebra::kInvalidDescriptorId);
      EXPECT_EQ(memo.store()->HashOf(m.args),
                memo.store()->Get(m.args).Hash());
    }
  }
  EXPECT_GT(memo.merge_epoch(), 0u);
  // Interning saw real sharing while building the memo.
  EXPECT_GT(memo.store()->hits(), 0u);
  EXPECT_LE(memo.store()->size(), memo.store()->lookups());
}

TEST_F(MicroOptimizer, OptimizerReportsInterningStats) {
  Optimizer o(&rules_, &catalog_);
  ExprPtr tree = JoinOf(RetOf("A", 10), RetOf("A", 10), 5);
  auto plan = o.Optimize(*tree);
  ASSERT_TRUE(plan.ok());
  // The duplicated RET(A) subtree guarantees interning hits.
  EXPECT_GT(o.stats().desc_interned, 0u);
  EXPECT_GT(o.stats().desc_lookups, o.stats().desc_hits);
  EXPECT_GT(o.stats().desc_hits, 0u);
  EXPECT_GT(o.stats().InternHitRate(), 0.0);
  EXPECT_LT(o.stats().InternHitRate(), 1.0);
}

TEST_F(MicroOptimizer, LogicalPropsExcludedFromIdentity) {
  Memo memo(&rules_, MemoLimits{});
  ExprPtr a = RetOf("A", 10);
  GroupId g1 = *memo.CopyIn(*a);
  // Same expression with a different card estimate dedups into the same
  // group: card is a logical property.
  ExprPtr b = RetOf("A", 10);
  b->mutable_descriptor()->SetUnchecked(card_, Value::Real(999));
  GroupId g2 = *memo.CopyIn(*b);
  EXPECT_EQ(memo.Find(g1), memo.Find(g2));
  // But a different *argument* property (tag) distinguishes expressions.
  ExprPtr c = RetOf("A", 10);
  c->mutable_descriptor()->SetUnchecked(tag_, Value::Str("other"));
  GroupId g3 = *memo.CopyIn(*c);
  EXPECT_NE(memo.Find(g1), memo.Find(g3));
}

}  // namespace
}  // namespace prairie::volcano

namespace prairie::volcano {
namespace {

// Additional engine-behaviour coverage appended after the main fixture.

class MicroOptimizerMore : public MicroOptimizer {};

TEST_F(MicroOptimizerMore, SecondOptimizeCallReusesTheMemo) {
  Optimizer o(&rules_, &catalog_);
  ExprPtr tree = JoinOf(RetOf("A", 10), RetOf("B", 20), 5);
  auto p1 = o.Optimize(*tree);
  ASSERT_TRUE(p1.ok());
  size_t groups_after_first = o.stats().groups;
  size_t costed_after_first = o.stats().plans_costed;
  // Same tree again: everything is memoized; no new groups, no new
  // costed plans.
  auto p2 = o.Optimize(*tree->Clone());
  ASSERT_TRUE(p2.ok());
  EXPECT_DOUBLE_EQ(p1->cost, p2->cost);
  EXPECT_EQ(o.stats().groups, groups_after_first);
  EXPECT_EQ(o.stats().plans_costed, costed_after_first);
}

TEST_F(MicroOptimizerMore, DifferentRequirementsShareLogicalExpansion) {
  Optimizer o(&rules_, &catalog_);
  ExprPtr tree = RetOf("R", 64);
  auto unordered = o.Optimize(*tree);
  ASSERT_TRUE(unordered.ok());
  size_t mexprs = o.stats().mexprs;
  Descriptor req = Desc();
  req.SetUnchecked(order_, Value::Sort(SortSpec::On(Attr{"R", "a"})));
  auto ordered = o.Optimize(*tree->Clone(), req);
  ASSERT_TRUE(ordered.ok());
  // The logical space did not grow; only a new winner was computed.
  EXPECT_EQ(o.stats().mexprs, mexprs);
  EXPECT_GT(ordered->cost, unordered->cost);
}

TEST_F(MicroOptimizerMore, EnforcerConditionCanReject) {
  rules_.enforcers[0].condition = [](BindingView&) -> common::Result<bool> {
    return false;
  };
  Optimizer o(&rules_, &catalog_);
  Descriptor req = Desc();
  req.SetUnchecked(order_, Value::Sort(SortSpec::On(Attr{"R", "a"})));
  auto plan = o.Optimize(*RetOf("R", 10), req);
  // Scan cannot produce the order and the only enforcer refuses.
  EXPECT_FALSE(plan.ok());
}

TEST_F(MicroOptimizerMore, EnforcerApplicablePredicateFilters) {
  rules_.enforcers[0].applicable = [](const Value&) { return false; };
  Optimizer o(&rules_, &catalog_);
  Descriptor req = Desc();
  req.SetUnchecked(order_, Value::Sort(SortSpec::On(Attr{"R", "a"})));
  auto plan = o.Optimize(*RetOf("R", 10), req);
  EXPECT_FALSE(plan.ok());
}

TEST_F(MicroOptimizerMore, StatsTrackMatchedRuleSets) {
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*RetOf("R", 10));
  ASSERT_TRUE(plan.ok());
  // No join anywhere: the commute rule never matched.
  EXPECT_EQ(o.stats().NumTransMatched(), 0u);
  EXPECT_EQ(o.stats().NumImplMatched(), 1u);  // Only the scan rule.
}

TEST_F(MicroOptimizerMore, MemoToStringListsGroups) {
  Memo memo(&rules_, MemoLimits{});
  ASSERT_TRUE(memo.CopyIn(*JoinOf(RetOf("A", 1), RetOf("B", 2), 3)).ok());
  std::string text = memo.ToString(*rules_.algebra);
  EXPECT_NE(text.find("group 0"), std::string::npos);
  EXPECT_NE(text.find("JOIN(g"), std::string::npos);
  EXPECT_NE(text.find("A"), std::string::npos);
}

TEST_F(MicroOptimizerMore, RuleSetValidationCatchesMistakes) {
  // Cost property must exist.
  RuleSet broken;
  broken.algebra = rules_.algebra;
  broken.cost_prop = -1;
  EXPECT_FALSE(broken.Finalize().ok());
  // Physical property cannot be the cost property.
  broken.cost_prop = cost_;
  broken.phys_props = {cost_};
  EXPECT_FALSE(broken.Finalize().ok());
  // Enforcer must name an algorithm.
  RuleSet bad_enf;
  bad_enf.algebra = rules_.algebra;
  bad_enf.cost_prop = cost_;
  bad_enf.phys_props = {order_};
  Enforcer e;
  e.name = "bogus";
  e.alg = ret_;  // An operator, not an algorithm.
  e.prop = order_;
  bad_enf.enforcers.push_back(std::move(e));
  EXPECT_FALSE(bad_enf.Finalize().ok());
}

TEST_F(MicroOptimizerMore, PropSatisfiesSemantics) {
  Value none;
  Value dontcare = Value::Sort(SortSpec::DontCare());
  Value on_a = Value::Sort(SortSpec::On(Attr{"R", "a"}));
  SortSpec ab;
  ab.keys = {{Attr{"R", "a"}, true}, {Attr{"R", "b"}, true}};
  Value on_ab = Value::Sort(ab);
  EXPECT_TRUE(PropSatisfies(none, none));
  EXPECT_TRUE(PropSatisfies(none, dontcare));   // DONT_CARE wants nothing.
  EXPECT_TRUE(PropSatisfies(on_ab, on_a));      // Prefix satisfaction.
  EXPECT_FALSE(PropSatisfies(on_a, on_ab));
  EXPECT_FALSE(PropSatisfies(none, on_a));
  EXPECT_FALSE(PropSatisfies(dontcare, on_a));
  EXPECT_TRUE(PropSatisfies(Value::Int(3), Value::Int(3)));
  EXPECT_FALSE(PropSatisfies(Value::Int(3), Value::Int(4)));
}

// Observability: trace-event stream, per-rule profile, plan provenance,
// and per-optimizer store-stat deltas.

class ObservabilityTest : public MicroOptimizer {
 protected:
  static size_t CountKind(const std::vector<common::TraceEvent>& events,
                          common::TraceEventKind kind) {
    size_t n = 0;
    for (const common::TraceEvent& e : events) n += (e.kind == kind);
    return n;
  }
};

TEST_F(ObservabilityTest, StatsHelpersHandCounted) {
  OptimizerStats s;
  // Zero interning lookups: the hit rate is 0, not NaN.
  EXPECT_EQ(s.desc_lookups, 0u);
  EXPECT_EQ(s.InternHitRate(), 0.0);
  s.trans_matched = {1, 0, 1, 0};
  s.impl_matched = {0, 1, 1};
  EXPECT_EQ(s.NumTransMatched(), 2u);
  EXPECT_EQ(s.NumImplMatched(), 2u);
}

TEST_F(ObservabilityTest, MatchedFlagsFollowTheTinyRuleSet) {
  // A join query exercises every rule of the micro set: commute matches
  // the join, scan implements the RETs, nl implements the join.
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(o.stats().trans_matched.size(), 1u);
  ASSERT_EQ(o.stats().impl_matched.size(), 2u);
  EXPECT_EQ(o.stats().trans_matched[0], 1);  // commute
  EXPECT_EQ(o.stats().impl_matched[0], 1);   // scan
  EXPECT_EQ(o.stats().impl_matched[1], 1);   // nl
  EXPECT_EQ(o.stats().NumTransMatched(), 1u);
  EXPECT_EQ(o.stats().NumImplMatched(), 2u);
}

TEST_F(ObservabilityTest, TraceEventCountsMatchStatsCounters) {
  common::RingBufferSink sink;
  OptimizerOptions options;
  options.trace = &sink;
  Optimizer o(&rules_, &catalog_, options);
  Descriptor req = Desc();
  req.SetUnchecked(order_, Value::Sort(SortSpec::On(Attr{"R", "a"})));
  auto plan = o.Optimize(
      *JoinOf(JoinOf(RetOf("A", 10), RetOf("B", 20), 5), RetOf("C", 30), 2),
      req);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(sink.dropped(), 0u);
  const std::vector<common::TraceEvent> events = sink.Snapshot();
  const OptimizerStats& s = o.stats();
  EXPECT_EQ(CountKind(events, common::TraceEventKind::kTransAttempt),
            s.trans_attempts);
  EXPECT_EQ(CountKind(events, common::TraceEventKind::kTransFire),
            s.trans_fired);
  EXPECT_EQ(CountKind(events, common::TraceEventKind::kImplAttempt),
            s.impl_attempts);
  EXPECT_EQ(CountKind(events, common::TraceEventKind::kEnforcerAttempt),
            s.enforcer_attempts);
  EXPECT_EQ(CountKind(events, common::TraceEventKind::kPlanCosted),
            s.plans_costed);
  EXPECT_GT(CountKind(events, common::TraceEventKind::kWinnerSelected), 0u);
  // Spans carry durations and valid nesting depths; instants do not.
  for (const common::TraceEvent& e : events) {
    EXPECT_GE(e.depth, 0);
    if (!common::IsSpanKind(e.kind)) EXPECT_EQ(e.dur_ns, 0u);
  }
}

TEST_F(ObservabilityTest, TracingDoesNotChangeTheAnswer) {
  ExprPtr tree = JoinOf(RetOf("Big", 1000), RetOf("Small", 10), 500);
  Optimizer plain(&rules_, &catalog_);
  auto p1 = plain.Optimize(*tree);
  common::RingBufferSink sink;
  OptimizerOptions options;
  options.trace = &sink;
  Optimizer traced(&rules_, &catalog_, options);
  auto p2 = traced.Optimize(*tree->Clone());
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_DOUBLE_EQ(p1->cost, p2->cost);
  EXPECT_EQ(plain.stats().trans_fired, traced.stats().trans_fired);
  EXPECT_GT(sink.total_emitted(), 0u);
}

TEST_F(ObservabilityTest, RuleProfileFiringsSumToStatsCounter) {
  common::RingBufferSink sink;
  OptimizerOptions options;
  options.trace = &sink;
  Optimizer o(&rules_, &catalog_, options);
  auto plan = o.Optimize(
      *JoinOf(JoinOf(RetOf("A", 10), RetOf("B", 20), 5), RetOf("C", 30), 2));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(sink.dropped(), 0u);
  RuleProfile profile = BuildRuleProfile(sink.Snapshot(), rules_);
  EXPECT_EQ(profile.TotalTransFired(), o.stats().trans_fired);
  ASSERT_EQ(profile.trans.size(), 1u);
  EXPECT_EQ(profile.trans[0].name, "commute");
  EXPECT_EQ(profile.trans[0].attempts, o.stats().trans_attempts);
  EXPECT_GT(profile.trans[0].total_ns, 0u);
  EXPECT_GE(profile.trans[0].total_ns, profile.trans[0].max_ns);
  // The profile names come from the rule set (the Prairie specification).
  std::string table = profile.ToTable();
  EXPECT_NE(table.find("commute"), std::string::npos);
  EXPECT_NE(table.find("scan"), std::string::npos);
  EXPECT_NE(table.find("nl"), std::string::npos);
}

TEST_F(ObservabilityTest, ChromeTraceExportIsWellFormedJson) {
  common::RingBufferSink sink;
  OptimizerOptions options;
  options.trace = &sink;
  Optimizer o(&rules_, &catalog_, options);
  ASSERT_TRUE(o.Optimize(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5)).ok());
  const std::string path =
      ::testing::TempDir() + "prairie_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path, sink.Snapshot(), rules_).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_EQ(text.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("T:commute"), std::string::npos);
  // The export closes with metadata carrying the ring's drop count.
  EXPECT_NE(text.find("\n],\"metadata\":{\"dropped_events\":0}}\n"),
            std::string::npos);
}

TEST_F(ObservabilityTest, ExplainWinnerWalksProvenanceChains) {
  // NL(Small, Big) wins, and the winning JOIN(small, big) expression was
  // created by the commute rule from the input JOIN(big, small).
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*JoinOf(RetOf("Big", 1000), RetOf("Small", 10), 500));
  ASSERT_TRUE(plan.ok());
  const std::string text = o.ExplainWinner();
  // The head of the chain: the winner was produced by the nl impl rule...
  EXPECT_NE(text.find("via impl_rule 'nl'"), std::string::npos) << text;
  // ...implementing an expression fired by the commute trans rule...
  EXPECT_NE(text.find("[from trans_rule 'commute']"), std::string::npos)
      << text;
  // ...derived from an expression copied in from the query.
  EXPECT_NE(text.find("[from input query]"), std::string::npos) << text;
  // Children chain down to scans over stored files.
  EXPECT_NE(text.find("via impl_rule 'scan'"), std::string::npos) << text;
  EXPECT_NE(text.find("via stored file"), std::string::npos) << text;
}

TEST_F(ObservabilityTest, ExplainWinnerShowsEnforcers) {
  Optimizer o(&rules_, &catalog_);
  Descriptor req = Desc();
  req.SetUnchecked(order_, Value::Sort(SortSpec::On(Attr{"R", "a"})));
  auto plan = o.Optimize(*RetOf("R", 64), req);
  ASSERT_TRUE(plan.ok());
  const std::string text = o.ExplainWinner();
  EXPECT_NE(text.find("via enforcer 'sorter'"), std::string::npos) << text;
  EXPECT_NE(text.find("via impl_rule 'scan'"), std::string::npos) << text;
}

TEST_F(ObservabilityTest, ExplainBeforeOptimizeIsHarmless) {
  Optimizer o(&rules_, &catalog_);
  EXPECT_EQ(o.ExplainWinner(), "(no optimized query to explain)\n");
}

TEST_F(ObservabilityTest, StoreStatsAreDeltasUnderASharedStore) {
  // Two optimizers sharing one store sequentially: each must report only
  // its own interning traffic, and the deltas must sum to the store's
  // global counters (the pre-fix behaviour double-counted: each optimizer
  // reported the global totals).
  algebra::DescriptorStore store(&rules_.algebra->properties());
  Optimizer a(&rules_, &catalog_, OptimizerOptions(), &store);
  ASSERT_TRUE(a.Optimize(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5)).ok());
  const uint64_t a_lookups = a.stats().desc_lookups;
  const uint64_t a_hits = a.stats().desc_hits;
  const size_t a_interned = a.stats().desc_interned;
  EXPECT_EQ(a_lookups, store.lookups());
  // The second optimizer starts AFTER the first finished; its deltas must
  // exclude everything the first one interned.
  Optimizer b(&rules_, &catalog_, OptimizerOptions(), &store);
  ASSERT_TRUE(b.Optimize(*JoinOf(RetOf("C", 30), RetOf("D", 40), 5)).ok());
  EXPECT_LT(b.stats().desc_lookups, store.lookups());
  EXPECT_EQ(a_lookups + b.stats().desc_lookups, store.lookups());
  EXPECT_EQ(a_hits + b.stats().desc_hits, store.hits());
  EXPECT_EQ(a_interned + b.stats().desc_interned, store.size());
}

// Memo inspector: DOT/JSON dumps of the finished search space.

class InspectorTest : public MicroOptimizer {
 protected:
  /// Compares `got` against the committed golden file, or rewrites the
  /// golden when PRAIRIE_REGEN_GOLDEN is set (run from a checkout so the
  /// source tree is writable, then commit the diff).
  static void CheckGolden(const std::string& got, const std::string& name) {
    const std::string path = std::string(PRAIRIE_TEST_DIR "/golden/") + name;
    if (std::getenv("PRAIRIE_REGEN_GOLDEN") != nullptr) {
      std::ofstream out(path, std::ios::out | std::ios::trunc);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << got;
      return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " (regenerate with PRAIRIE_REGEN_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "memo dump drifted from " << path
        << " (regenerate with PRAIRIE_REGEN_GOLDEN=1 and review the diff)";
  }
};

TEST_F(InspectorTest, GoldenDotAndJsonDumps) {
  // Deterministic micro search: serial store, fixed costs, no
  // requirement. Scan(A)=10, Scan(B)=20; NL(A,B)=10+10*20=210 beats the
  // commuted NL(B,A)=20+20*10=220.
  Optimizer o(&rules_, &catalog_);
  auto plan = o.Optimize(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5));
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->cost, 210.0);
  CheckGolden(MemoToDot(o.memo(), rules_), "micro_memo.dot");
  CheckGolden(MemoToJson(o.memo(), rules_), "micro_memo.json");
}

TEST_F(InspectorTest, MergedGroupsAreCanonicalizedNotDuplicated) {
  Memo memo(&rules_, MemoLimits{});
  auto a = memo.CopyIn(*RetOf("A", 10));  // g0: file A, g1: RET(g0)
  auto b = memo.CopyIn(*RetOf("B", 20));  // g2: file B, g3: RET(g2)
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_NE(memo.Find(*a), memo.Find(*b));
  // Claim RET(B)'s expression is also a member of RET(A)'s group: the
  // memo must merge the two groups rather than store a duplicate.
  MExpr dup = memo.group(*b).exprs[0];
  auto inserted = memo.InsertInto(*a, dup);
  ASSERT_TRUE(inserted.ok());
  ASSERT_GE(memo.tallies().groups_merged, 1u);
  ASSERT_EQ(memo.Find(*a), memo.Find(*b));

  const std::string dot = MemoToDot(memo, rules_);
  const std::string json = MemoToJson(memo, rules_);
  // Exactly one node/object per live group; merged-away ids are neither
  // dropped silently (the live count must match) nor rendered twice.
  size_t dot_nodes = 0;
  std::vector<GroupId> live;
  for (size_t i = 0; i < memo.allocated_groups(); ++i) {
    const GroupId gid = static_cast<GroupId>(i);
    const std::string node_decl =
        "\n  g" + std::to_string(gid) + " [label=";
    const bool declared = dot.find(node_decl) != std::string::npos;
    if (memo.Find(gid) == gid) {
      live.push_back(gid);
      ++dot_nodes;
      EXPECT_TRUE(declared) << "live group g" << gid << " missing from DOT";
      EXPECT_NE(json.find("{\"id\": " + std::to_string(gid) + ","),
                std::string::npos)
          << "live group g" << gid << " missing from JSON";
    } else {
      EXPECT_FALSE(declared) << "merged-away g" << gid << " rendered";
      EXPECT_EQ(json.find("{\"id\": " + std::to_string(gid) + ","),
                std::string::npos)
          << "merged-away g" << gid << " rendered in JSON";
    }
  }
  EXPECT_EQ(dot_nodes, memo.NumGroups());
  EXPECT_EQ(live.size(), memo.NumGroups());
  // Every child reference in every live expression resolves to a live
  // representative, so all rendered edges point at rendered nodes.
  for (GroupId gid : live) {
    for (const MExpr& m : memo.group(gid).exprs) {
      for (GroupId c : m.children) {
        EXPECT_NE(std::find(live.begin(), live.end(), memo.Find(c)),
                  live.end());
      }
    }
  }
}

TEST_F(InspectorTest, WriteMemoDumpPicksFormatByExtension) {
  Memo memo(&rules_, MemoLimits{});
  ASSERT_TRUE(memo.CopyIn(*RetOf("A", 10)).ok());
  EXPECT_FALSE(WriteMemoDump("memo.svg", memo, rules_).ok());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(WriteMemoDump(dir + "/m.dot", memo, rules_).ok());
  ASSERT_TRUE(WriteMemoDump(dir + "/m.json", memo, rules_).ok());
  std::ifstream dot(dir + "/m.dot");
  std::string first_line;
  ASSERT_TRUE(std::getline(dot, first_line));
  EXPECT_EQ(first_line, "digraph memo {");
}

TEST_F(ObservabilityTest, MetricsCountersMatchStatsAcrossQueries) {
  common::MetricsRegistry registry;
  VolcanoMetrics metrics = VolcanoMetrics::ForRuleSet(&registry, rules_);
  OptimizerOptions options;
  options.metrics = &metrics;
  Optimizer o(&rules_, &catalog_, options);
  ASSERT_TRUE(o.Optimize(*JoinOf(RetOf("A", 10), RetOf("B", 20), 5)).ok());
  // Second query through the same optimizer: the flush must add deltas,
  // not re-add the first query's totals.
  ASSERT_TRUE(
      o.Optimize(*JoinOf(RetOf("C", 30), RetOf("D", 40), 10)).ok());
#if PRAIRIE_METRICS
  const OptimizerStats& s = o.stats();
  EXPECT_EQ(metrics.queries->Value(), 2u);
  EXPECT_EQ(metrics.trans_attempts->Value(), s.trans_attempts);
  EXPECT_EQ(metrics.trans_fired->Value(), s.trans_fired);
  EXPECT_EQ(metrics.impl_attempts->Value(), s.impl_attempts);
  EXPECT_EQ(metrics.plans_costed->Value(), s.plans_costed);
  EXPECT_EQ(metrics.winners_selected->Value(), s.winners_selected);
  EXPECT_EQ(metrics.prunes->Value(), s.prunes);
  EXPECT_EQ(metrics.cycle_guard_hits->Value(), s.cycle_guard_hits);
  const MemoTallies& t = o.memo().tallies();
  EXPECT_EQ(metrics.memo_groups_created->Value(), t.groups_created);
  EXPECT_EQ(metrics.memo_groups_merged->Value(), t.groups_merged);
  EXPECT_EQ(metrics.memo_exprs_inserted->Value(), t.exprs_inserted);
  EXPECT_EQ(metrics.memo_exprs_deduped->Value(), t.exprs_deduped);
  // Interning traffic flushed from the store counters.
  const auto counters = o.memo().store()->Counters();
  EXPECT_EQ(metrics.intern_hits->Value(), counters.hits);
  EXPECT_EQ(metrics.intern_misses->Value(), counters.misses());
  // Both query latencies observed, whatever the durations were.
  EXPECT_EQ(metrics.query_latency_ns->Snapshot().count, 2u);
#endif
}

// ---------------------------------------------------------------------------
// Anytime budgets.

class BudgetTest : public MicroOptimizer {
 protected:
  ExprPtr Chain4() {
    return JoinOf(JoinOf(JoinOf(RetOf("A", 50), RetOf("B", 40), 35),
                         RetOf("C", 30), 20),
                  RetOf("D", 25), 10);
  }
};

TEST_F(BudgetTest, UnreachedBudgetIsByteIdenticalToNoBudget) {
  Optimizer plain(&rules_, &catalog_);
  auto ref = plain.Optimize(*Chain4());
  ASSERT_TRUE(ref.ok());
  EXPECT_FALSE(plain.stats().budget_exhausted);

  OptimizerOptions opts;
  opts.search_budget_ms = 1e9;  // Armed, never reached.
  opts.group_budget = 1u << 30;
  Optimizer budgeted(&rules_, &catalog_, opts);
  auto plan = budgeted.Optimize(*Chain4());
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(budgeted.stats().budget_exhausted);
  EXPECT_DOUBLE_EQ(plan->cost, ref->cost);
  EXPECT_EQ(plan->root->ToString(*rules_.algebra),
            ref->root->ToString(*rules_.algebra));
  // An unreached budget is invisible: the identical search ran.
  EXPECT_EQ(budgeted.stats().mexprs, plain.stats().mexprs);
  EXPECT_EQ(budgeted.stats().trans_fired, plain.stats().trans_fired);
  EXPECT_EQ(budgeted.stats().plans_costed, plain.stats().plans_costed);
}

TEST_F(BudgetTest, GroupBudgetReturnsValidPossiblySuboptimalPlan) {
  Optimizer plain(&rules_, &catalog_);
  auto ref = plain.Optimize(*Chain4());
  ASSERT_TRUE(ref.ok());

  OptimizerOptions opts;
  opts.group_budget = 1;  // Exhausted after the initial CopyIn.
  Optimizer budgeted(&rules_, &catalog_, opts);
  auto plan = budgeted.Optimize(*Chain4());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(budgeted.stats().budget_exhausted);
  // Valid plan over the truncated space: never better than the optimum.
  EXPECT_GE(plan->cost, ref->cost);
  EXPECT_GT(plan->cost, 0);
  // The truncated search expanded strictly less.
  EXPECT_LT(budgeted.stats().trans_fired, plain.stats().trans_fired);
}

TEST_F(BudgetTest, InfeasibleCostLimitStillFailsUnderBudget) {
  // failed_limit bookkeeping is untouched by budgets: an initial cost
  // limit below every feasible plan fails the same way.
  OptimizerOptions opts;
  opts.initial_cost_limit = 5;
  opts.group_budget = 1u << 30;
  opts.search_budget_ms = 1e9;
  Optimizer o(&rules_, &catalog_, opts);
  auto plan = o.Optimize(*RetOf("R", 100));
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), common::StatusCode::kOptimizeError);
}

TEST_F(BudgetTest, BudgetExhaustedPlansAreNotCached) {
  algebra::DescriptorStore store(&rules_.algebra->properties(),
                                 algebra::StoreMode::kSerial);
  PlanCache cache(&store);

  OptimizerOptions opts;
  opts.plan_cache = &cache;
  opts.group_budget = 1;
  Optimizer budgeted(&rules_, &catalog_, opts, &store);
  auto truncated = budgeted.Optimize(*Chain4());
  ASSERT_TRUE(truncated.ok());
  ASSERT_TRUE(budgeted.stats().budget_exhausted);
  // A possibly-suboptimal plan must not poison the cache.
  EXPECT_EQ(cache.size(), 0u);

  OptimizerOptions full;
  full.plan_cache = &cache;
  Optimizer unbudgeted(&rules_, &catalog_, full, &store);
  auto best = unbudgeted.Optimize(*Chain4());
  ASSERT_TRUE(best.ok());
  EXPECT_FALSE(unbudgeted.stats().budget_exhausted);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_LE(best->cost, truncated->cost);
}

// ---------------------------------------------------------------------------
// Intra-query parallel search: plan identity against the serial engine
// over the paper's workloads and the adversarial join shapes.

class ParallelSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto prairie_rules = opt::BuildOodbPrairie();
    ASSERT_TRUE(prairie_rules.ok()) << prairie_rules.status().ToString();
    auto translated = p2v::Translate(*prairie_rules, nullptr);
    ASSERT_TRUE(translated.ok()) << translated.status().ToString();
    rules_ = std::move(*translated);
  }

  workload::Workload MakeQ(int qnum, int joins, uint64_t seed) {
    auto w = workload::MakeWorkload(
        *rules_->algebra, workload::PaperQuery(qnum, joins, seed));
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return std::move(*w);
  }

  std::shared_ptr<RuleSet> rules_;
};

TEST_F(ParallelSearchTest, Q1ThroughQ8CostIdenticalToSerial) {
  for (int q = 1; q <= 8; ++q) {
    workload::Workload w = MakeQ(q, 2, 1);
    Optimizer serial(rules_.get(), &w.catalog, {});
    auto ref = serial.Optimize(*w.query);
    ASSERT_TRUE(ref.ok()) << "Q" << q << ": " << ref.status().ToString();

    for (int jobs : {2, 4}) {
      OptimizerOptions options;
      options.search_jobs = jobs;
      Optimizer parallel(rules_.get(), &w.catalog, options);
      auto plan = parallel.Optimize(*w.query);
      ASSERT_TRUE(plan.ok())
          << "Q" << q << " jobs=" << jobs << ": " << plan.status().ToString();
      EXPECT_EQ(plan->cost, ref->cost) << "Q" << q << " jobs=" << jobs;
      EXPECT_EQ(plan->root->ToString(*rules_->algebra),
                ref->root->ToString(*rules_->algebra))
          << "Q" << q << " jobs=" << jobs;
      EXPECT_FALSE(parallel.stats().budget_exhausted);
    }
  }
}

TEST_F(ParallelSearchTest, BigJoinShapesCostIdenticalToSerial) {
  struct Case {
    workload::JoinShape shape;
    int joins;
  };
  for (const Case& c : {Case{workload::JoinShape::kChain, 7},
                        Case{workload::JoinShape::kStar, 5},
                        Case{workload::JoinShape::kClique, 4}}) {
    workload::QuerySpec spec = workload::PaperQuery(1, c.joins, 1);
    spec.shape = c.shape;
    auto w = workload::MakeWorkload(*rules_->algebra, spec);
    ASSERT_TRUE(w.ok()) << w.status().ToString();

    Optimizer serial(rules_.get(), &w->catalog, {});
    auto ref = serial.Optimize(*w->query);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();

    OptimizerOptions options;
    options.search_jobs = 4;
    Optimizer parallel(rules_.get(), &w->catalog, options);
    auto plan = parallel.Optimize(*w->query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan->cost, ref->cost);
    EXPECT_EQ(plan->root->ToString(*rules_->algebra),
              ref->root->ToString(*rules_->algebra));
  }
}

TEST_F(ParallelSearchTest, SerialSharedStoreDegradesToSerialSearch) {
  // A serial shared store cannot back a concurrent memo: search_jobs > 1
  // degrades to the single-threaded engine (and its exact statistics)
  // instead of racing on an unsynchronized store.
  workload::Workload w = MakeQ(1, 3, 1);
  Optimizer serial(rules_.get(), &w.catalog, {});
  auto ref = serial.Optimize(*w.query);
  ASSERT_TRUE(ref.ok());

  algebra::DescriptorStore store(&rules_->algebra->properties(),
                                 algebra::StoreMode::kSerial);
  OptimizerOptions options;
  options.search_jobs = 8;
  Optimizer degraded(rules_.get(), &w.catalog, options, &store);
  auto plan = degraded.Optimize(*w.query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->cost, ref->cost);
  // Fully serial search: stats are byte-identical, not merely cost-equal.
  EXPECT_EQ(degraded.stats().mexprs, serial.stats().mexprs);
  EXPECT_EQ(degraded.stats().trans_fired, serial.stats().trans_fired);
  EXPECT_EQ(degraded.stats().plans_costed, serial.stats().plans_costed);
}

TEST_F(ParallelSearchTest, GroupBudgetComposesWithParallelSearch) {
  workload::QuerySpec spec = workload::PaperQuery(1, 5, 1);
  spec.shape = workload::JoinShape::kStar;
  auto w = workload::MakeWorkload(*rules_->algebra, spec);
  ASSERT_TRUE(w.ok());

  Optimizer serial(rules_.get(), &w->catalog, {});
  auto ref = serial.Optimize(*w->query);
  ASSERT_TRUE(ref.ok());

  OptimizerOptions options;
  options.search_jobs = 4;
  options.group_budget = 8;  // Far below the full search's group count.
  Optimizer budgeted(rules_.get(), &w->catalog, options);
  auto plan = budgeted.Optimize(*w->query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(budgeted.stats().budget_exhausted);
  EXPECT_GE(plan->cost, ref->cost);
}

}  // namespace
}  // namespace prairie::volcano

// Tests for the parallel batch-optimization layer: concurrent descriptor
// interning (canonical ids under racing threads), slice registration
// dedup, the per-operator rule dispatch index (must be search-equivalent
// to the linear scan), and BatchOptimizer plan identity against the
// single-threaded optimizer.
//
// Suite names (ConcurrentStoreTest / DispatchIndexTest /
// BatchOptimizerTest) are what CI's ThreadSanitizer job selects with
// `ctest -R`.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algebra/descriptor_store.h"
#include "algebra/param.h"
#include "common/metrics.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "exec/builder.h"
#include "exec/feedback.h"
#include "exec/operators.h"
#include "exec/stats.h"
#include "optimizers/oodb.h"
#include "optimizers/props.h"
#include "p2v/translator.h"
#include "volcano/batch.h"
#include "volcano/diag.h"
#include "volcano/engine.h"
#include "volcano/memo.h"
#include "volcano/plancache.h"
#include "workload/workload.h"

namespace prairie {
namespace {

using algebra::Descriptor;
using algebra::DescriptorId;
using algebra::DescriptorStore;
using algebra::PropertyId;
using algebra::PropertySchema;
using algebra::PropertySlice;
using algebra::SliceId;
using algebra::StoreMode;
using algebra::Value;
using algebra::ValueType;

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto PRAIRIE_CONCAT(_res_, __LINE__) = (rexpr);    \
  ASSERT_TRUE(PRAIRIE_CONCAT(_res_, __LINE__).ok())  \
      << PRAIRIE_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(PRAIRIE_CONCAT(_res_, __LINE__)).ValueUnsafe();

// ---------------------------------------------------------------------------
// Concurrent interning.

class ConcurrentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.Add("x", ValueType::kReal).ok());
    ASSERT_TRUE(schema_.Add("y", ValueType::kReal).ok());
    ASSERT_TRUE(schema_.Add("s", ValueType::kString).ok());
    x_ = *schema_.Find("x");
    y_ = *schema_.Find("y");
    s_ = *schema_.Find("s");
  }

  Descriptor Make(int key) const {
    Descriptor d(&schema_);
    d.SetUnchecked(x_, Value::Real(static_cast<double>(key)));
    d.SetUnchecked(y_, Value::Real(static_cast<double>(key % 4)));
    d.SetUnchecked(s_, Value::Str("tag" + std::to_string(key % 8)));
    return d;
  }

  PropertySchema schema_;
  PropertyId x_ = 0, y_ = 0, s_ = 0;
};

TEST_F(ConcurrentStoreTest, ParallelInternYieldsCanonicalIds) {
  constexpr int kKeys = 64;
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;

  DescriptorStore store(&schema_, StoreMode::kConcurrent);
  ASSERT_TRUE(store.concurrent());

  // Every thread interns the whole key space repeatedly, each starting at
  // a different rotation so threads race on different keys at any moment.
  std::vector<std::vector<DescriptorId>> seen(
      kThreads, std::vector<DescriptorId>(kKeys, algebra::kInvalidDescriptorId));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kKeys; ++i) {
          const int key = (i + t * 7) % kKeys;
          const DescriptorId id = store.Intern(Make(key));
          if (seen[t][key] == algebra::kInvalidDescriptorId) {
            seen[t][key] = id;
          } else {
            // Re-interning an equal value must return the same id, always.
            ASSERT_EQ(seen[t][key], id);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // All threads agree on every key's id: ids are globally canonical.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  // Value-level dedup is global: exactly one entry per distinct value.
  EXPECT_EQ(store.size(), static_cast<size_t>(kKeys));
  // The id <-> value invariant holds for everything interned.
  for (int key = 0; key < kKeys; ++key) {
    const DescriptorId id = seen[0][key];
    EXPECT_TRUE(store.Get(id) == Make(key));
    EXPECT_EQ(store.HashOf(id), store.Get(id).Hash());
  }
  // Traffic accounting: kThreads * kRounds * kKeys lookups, all but the
  // first interning of each value a hit.
  EXPECT_EQ(store.lookups(), uint64_t{kThreads} * kRounds * kKeys);
  EXPECT_EQ(store.hits(), store.lookups() - kKeys);
}

TEST_F(ConcurrentStoreTest, ParallelProjectedInternAndProject) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;

  DescriptorStore store(&schema_, StoreMode::kConcurrent);
  const SliceId sx = store.RegisterSlice(PropertySlice{{x_}});

  // Pre-intern the full descriptors serially so Project() has stable ids
  // to chew on; the projected interning itself runs concurrently.
  std::vector<DescriptorId> full(kKeys);
  for (int i = 0; i < kKeys; ++i) full[i] = store.Intern(Make(i));

  std::vector<std::vector<DescriptorId>> proj(
      kThreads, std::vector<DescriptorId>(kKeys));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kKeys; ++i) {
        const int key = (i + t * 5) % kKeys;
        // Mix both entry points; they must agree.
        const DescriptorId via_value = store.InternProjected(sx, Make(key));
        const DescriptorId via_id = store.Project(sx, full[key]);
        ASSERT_EQ(via_value, via_id);
        proj[t][key] = via_value;
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(proj[t], proj[0]);
  // The projection keeps only x, so every projected id's descriptor must
  // equal the slice projection of the full value.
  const PropertySlice slice{{x_}};
  for (int key = 0; key < kKeys; ++key) {
    EXPECT_TRUE(store.Get(proj[0][key]) == slice.Project(Make(key)));
  }
}

TEST_F(ConcurrentStoreTest, RegisterSliceDedupesByPropertySet) {
  DescriptorStore store(&schema_, StoreMode::kConcurrent);
  const SliceId a = store.RegisterSlice(PropertySlice{{x_, s_}});
  const SliceId b = store.RegisterSlice(PropertySlice{{x_, s_}});
  const SliceId c = store.RegisterSlice(PropertySlice{{y_}});
  EXPECT_EQ(a, b);  // same property set -> same handle, no coordination
  EXPECT_NE(a, c);
  EXPECT_EQ(store.slice(a).ids, (std::vector<PropertyId>{x_, s_}));
  EXPECT_EQ(store.slice(c).ids, (std::vector<PropertyId>{y_}));
}

TEST_F(ConcurrentStoreTest, SerialModeBehavesIdentically) {
  DescriptorStore serial(&schema_, StoreMode::kSerial);
  DescriptorStore conc(&schema_, StoreMode::kConcurrent);
  EXPECT_FALSE(serial.concurrent());
  for (int pass = 0; pass < 2; ++pass) {
    for (int key = 0; key < 16; ++key) {
      EXPECT_EQ(serial.Intern(Make(key)), conc.Intern(Make(key)));
    }
  }
  EXPECT_EQ(serial.size(), conc.size());
  EXPECT_EQ(serial.lookups(), conc.lookups());
  EXPECT_EQ(serial.hits(), conc.hits());
}

// ---------------------------------------------------------------------------
// Per-operator rule dispatch index.

class OodbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(core::RuleSet prairie_rules, opt::BuildOodbPrairie());
    ASSERT_OK_AND_ASSIGN(rules_, p2v::Translate(prairie_rules, nullptr));
  }

  workload::Workload MakeQ(int qnum, int joins, uint64_t seed) {
    auto w = workload::MakeWorkload(
        *rules_->algebra, workload::PaperQuery(qnum, joins, seed));
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    return std::move(*w);
  }

  std::shared_ptr<volcano::RuleSet> rules_;
};

using DispatchIndexTest = OodbFixture;

TEST_F(DispatchIndexTest, FinalizeBuildsWellFormedIndex) {
  ASSERT_FALSE(rules_->trans_rules_by_op.empty());
  ASSERT_FALSE(rules_->impl_rules_by_op.empty());
  size_t trans_indexed = 0;
  for (const auto& bucket : rules_->trans_rules_by_op) {
    for (uint32_t ri : bucket) {
      ASSERT_LT(ri, rules_->trans_rules.size());
      ++trans_indexed;
    }
  }
  EXPECT_GT(trans_indexed, 0u);
  for (size_t op = 0; op < rules_->impl_rules_by_op.size(); ++op) {
    for (uint32_t ri : rules_->impl_rules_by_op[op]) {
      ASSERT_LT(ri, rules_->impl_rules.size());
      // An impl bucket only holds rules for exactly that operator.
      EXPECT_EQ(static_cast<size_t>(rules_->impl_rules[ri].op), op);
    }
  }
}

TEST_F(DispatchIndexTest, SearchIsEquivalentToLinearScan) {
  for (int q = 1; q <= 8; ++q) {
    workload::Workload w = MakeQ(q, 2, 1);

    volcano::OptimizerOptions indexed_opts;
    indexed_opts.use_dispatch_index = true;
    volcano::Optimizer indexed(rules_.get(), &w.catalog, indexed_opts);
    auto indexed_plan = indexed.Optimize(*w.query);
    ASSERT_TRUE(indexed_plan.ok()) << indexed_plan.status().ToString();

    volcano::OptimizerOptions scan_opts;
    scan_opts.use_dispatch_index = false;
    volcano::Optimizer scanned(rules_.get(), &w.catalog, scan_opts);
    auto scanned_plan = scanned.Optimize(*w.query);
    ASSERT_TRUE(scanned_plan.ok()) << scanned_plan.status().ToString();

    // Not merely the same plan: the identical search (same groups, same
    // expressions, same rule firings, same costed plans).
    EXPECT_EQ(indexed_plan->cost, scanned_plan->cost) << "Q" << q;
    EXPECT_EQ(indexed_plan->root->ToString(*rules_->algebra),
              scanned_plan->root->ToString(*rules_->algebra))
        << "Q" << q;
    EXPECT_EQ(indexed.stats().groups, scanned.stats().groups) << "Q" << q;
    EXPECT_EQ(indexed.stats().mexprs, scanned.stats().mexprs) << "Q" << q;
    EXPECT_EQ(indexed.stats().trans_fired, scanned.stats().trans_fired)
        << "Q" << q;
    EXPECT_EQ(indexed.stats().plans_costed, scanned.stats().plans_costed)
        << "Q" << q;
  }
}

// ---------------------------------------------------------------------------
// BatchOptimizer.

using BatchOptimizerTest = OodbFixture;

TEST_F(BatchOptimizerTest, ParallelPlansMatchSerialOptimizer) {
  std::vector<workload::Workload> workloads;
  for (int q = 1; q <= 8; ++q) workloads.push_back(MakeQ(q, 2, 1));

  // Serial reference: one fresh single-threaded optimizer per query.
  std::vector<double> ref_cost;
  std::vector<std::string> ref_plan;
  for (const auto& w : workloads) {
    volcano::Optimizer opt(rules_.get(), &w.catalog, {});
    auto plan = opt.Optimize(*w.query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ref_cost.push_back(plan->cost);
    ref_plan.push_back(plan->root->ToString(*rules_->algebra));
  }

  std::vector<volcano::BatchQuery> queries;
  for (const auto& w : workloads) {
    queries.push_back(volcano::BatchQuery{w.query.get(), &w.catalog});
  }

  for (int jobs : {1, 4}) {
    volcano::BatchOptions options;
    options.jobs = jobs;
    volcano::BatchOptimizer batch(rules_.get(), options);
    EXPECT_EQ(batch.jobs(), jobs);
    ASSERT_NE(batch.shared_store(), nullptr);
    EXPECT_EQ(batch.shared_store()->concurrent(), jobs > 1);

    auto results = batch.OptimizeAll(queries);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].plan.ok())
          << "jobs=" << jobs << " Q" << (i + 1) << ": "
          << results[i].plan.status().ToString();
      EXPECT_EQ(results[i].plan->cost, ref_cost[i])
          << "jobs=" << jobs << " Q" << (i + 1);
      EXPECT_EQ(results[i].plan->root->ToString(*rules_->algebra), ref_plan[i])
          << "jobs=" << jobs << " Q" << (i + 1);
      EXPECT_GT(results[i].stats.groups, 0u);
      EXPECT_GE(results[i].seconds, 0.0);
    }
    EXPECT_GT(batch.shared_store()->size(), 0u);
  }
}

TEST_F(BatchOptimizerTest, PerQueryFailuresDoNotAbortTheBatch) {
  workload::Workload good = MakeQ(1, 2, 1);
  std::vector<volcano::BatchQuery> queries{
      volcano::BatchQuery{good.query.get(), &good.catalog},
      volcano::BatchQuery{nullptr, &good.catalog},  // broken entry
      volcano::BatchQuery{good.query.get(), &good.catalog},
  };
  volcano::BatchOptions options;
  options.jobs = 2;
  volcano::BatchOptimizer batch(rules_.get(), options);
  auto results = batch.OptimizeAll(queries);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].plan.ok());
  EXPECT_FALSE(results[1].plan.ok());
  EXPECT_TRUE(results[2].plan.ok());
  EXPECT_EQ(results[0].plan->cost, results[2].plan->cost);
}

TEST_F(BatchOptimizerTest, PerWorkerTracingMergesOneConsistentStream) {
  std::vector<workload::Workload> workloads;
  for (int q = 1; q <= 8; ++q) workloads.push_back(MakeQ(q, 2, 1));
  std::vector<volcano::BatchQuery> queries;
  for (const auto& w : workloads) {
    queries.push_back(volcano::BatchQuery{w.query.get(), &w.catalog});
  }

  volcano::BatchOptions options;
  options.jobs = 4;
  options.trace_capacity = 1 << 16;
  volcano::BatchOptimizer batch(rules_.get(), options);
  auto results = batch.OptimizeAll(queries);
  ASSERT_EQ(results.size(), queries.size());

  size_t trans_fired = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.plan.ok()) << r.plan.status().ToString();
    trans_fired += r.stats.trans_fired;
  }

  // Every worker traced into a private sink; the merged stream must carry
  // exactly the events the per-query stats counted, in timestamp order.
  EXPECT_EQ(batch.trace_dropped(), 0u);
  const auto& events = batch.trace_events();
  EXPECT_FALSE(events.empty());
  size_t fire_events = 0;
  for (const auto& e : events) {
    if (e.kind == common::TraceEventKind::kTransFire) ++fire_events;
  }
  EXPECT_EQ(fire_events, trans_fired);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST_F(BatchOptimizerTest, PrivateStoresWhenSharingDisabled) {
  workload::Workload w = MakeQ(2, 2, 1);
  std::vector<volcano::BatchQuery> queries{
      volcano::BatchQuery{w.query.get(), &w.catalog}};
  volcano::BatchOptions options;
  options.jobs = 2;
  options.share_store = false;
  volcano::BatchOptimizer batch(rules_.get(), options);
  EXPECT_EQ(batch.shared_store(), nullptr);
  auto results = batch.OptimizeAll(queries);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].plan.ok());
}

// ---------------------------------------------------------------------------
// Metrics under concurrency (TSan-covered): sharded counters/histograms
// take concurrent increments from many threads while another thread
// snapshots and exports — no locks on the write path, so this is exactly
// the interleaving the relaxed-atomic sharding must survive.

TEST(MetricsRegistryTest, ConcurrentIncrementsMergeExactly) {
  common::MetricsRegistry registry;
  common::Counter* counter = registry.GetCounter("stress_total");
  common::Histogram* hist = registry.GetHistogram("stress_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
        hist->Observe(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const common::HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotsRaceWithWriters) {
  common::MetricsRegistry registry;
  common::Counter* counter = registry.GetCounter("race_total");
  common::Histogram* hist =
      registry.GetHistogram("race_ns", "", {{"rule", "stress"}});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Inc();
        hist->Observe(100);
      }
    });
  }
  // Concurrent readers: raw values, merged snapshots, both exporters, and
  // re-registration of the same identities.
  for (int i = 0; i < 50; ++i) {
    (void)counter->Value();
    (void)hist->Snapshot();
    EXPECT_FALSE(registry.PrometheusText().empty());
    EXPECT_FALSE(registry.JsonSnapshot().empty());
    EXPECT_EQ(registry.GetCounter("race_total"), counter);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  // Quiesced: a final snapshot is exact.
  const common::HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, counter->Value());
  EXPECT_EQ(snap.sum, 100 * counter->Value());
}

TEST(MetricsRegistryTest, SharedBundleAcrossBatchWorkers) {
  auto prairie_rules = opt::BuildOodbPrairie();
  ASSERT_TRUE(prairie_rules.ok());
  auto rules = p2v::Translate(*prairie_rules, nullptr);
  ASSERT_TRUE(rules.ok());
  common::MetricsRegistry registry;
  volcano::VolcanoMetrics metrics =
      volcano::VolcanoMetrics::ForRuleSet(&registry, **rules);
  constexpr int kQueries = 8;
  std::vector<workload::Workload> workloads;
  for (int i = 0; i < kQueries; ++i) {
    workload::QuerySpec spec =
        workload::PaperQuery(3, 2, static_cast<uint64_t>(i + 1));
    auto w = workload::MakeWorkload(*(*rules)->algebra, spec);
    ASSERT_TRUE(w.ok());
    workloads.push_back(std::move(*w));
  }
  std::vector<volcano::BatchQuery> queries;
  for (const auto& w : workloads) {
    queries.push_back(volcano::BatchQuery{w.query.get(), &w.catalog});
  }
  volcano::BatchOptions options;
  options.jobs = 4;
  options.optimizer.metrics = &metrics;
  volcano::BatchOptimizer batch(rules->get(), options);
  auto results = batch.OptimizeAll(queries);
  size_t want_trans_attempts = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.plan.ok());
    want_trans_attempts += r.stats.trans_attempts;
  }
#if PRAIRIE_METRICS
  // Every worker flushed into the same sharded series; the merge must be
  // exact once the batch barrier has passed.
  EXPECT_EQ(metrics.queries->Value(), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(metrics.trans_attempts->Value(), want_trans_attempts);
  EXPECT_EQ(metrics.batch_runs->Value(), 1u);
  EXPECT_EQ(metrics.batch_worker_merges->Value(), 4u);
#endif
}

// ---------------------------------------------------------------------------
// Plan cache under concurrency (TSan-covered): 8 workers share one cache
// over one concurrent store — racing probes, inserts, LRU splices and
// evictions — while another thread keeps bumping a catalog's version
// (contents unchanged, so every produced plan stays comparable to the
// serial reference; the bumps only force stale drops and refused inserts).

using PlanCacheConcurrencyTest = OodbFixture;

TEST_F(PlanCacheConcurrencyTest, SharedCacheUnderProbesInsertsAndEpochBumps) {
  constexpr int kRounds = 6;
  std::vector<workload::Workload> workloads;
  for (int q = 1; q <= 8; ++q) workloads.push_back(MakeQ(q, 2, 1));

  // Serial cache-less reference, per query.
  std::vector<double> ref_cost;
  std::vector<std::string> ref_plan;
  for (const auto& w : workloads) {
    volcano::Optimizer opt(rules_.get(), &w.catalog, {});
    auto plan = opt.Optimize(*w.query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ref_cost.push_back(plan->cost);
    ref_plan.push_back(plan->root->ToString(*rules_->algebra));
  }

  std::vector<volcano::BatchQuery> queries;
  for (const auto& w : workloads) {
    queries.push_back(volcano::BatchQuery{w.query.get(), &w.catalog});
  }

  // The mutator bumps one catalog's epoch while workers optimize against
  // it; plans stay correct because the contents never change.
  std::atomic<bool> stop{false};
  std::thread mutator([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      workloads[0].catalog.BumpVersion();
      std::this_thread::yield();
    }
  });

  auto run_rounds = [&](volcano::BatchOptimizer* batch) {
    for (int round = 0; round < kRounds; ++round) {
      auto results = batch->OptimizeAll(queries);
      ASSERT_EQ(results.size(), queries.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].plan.ok())
            << "round " << round << " query " << i << ": "
            << results[i].plan.status().ToString();
        EXPECT_EQ(results[i].plan->cost, ref_cost[i])
            << "round " << round << " query " << i;
        EXPECT_EQ(results[i].plan->root->ToString(*rules_->algebra),
                  ref_plan[i])
            << "round " << round << " query " << i;
      }
    }
  };

  // Phase 1: a deliberately tiny cache (one entry per shard) so evictions
  // race probes and inserts. Colliding keys can evict each other before
  // either re-probes, so no hit count is guaranteed here — only plan
  // correctness and probe accounting.
  {
    volcano::BatchOptions options;
    options.jobs = 8;
    options.plan_cache_entries = 16;
    volcano::BatchOptimizer batch(rules_.get(), options);
    run_rounds(&batch);
    const volcano::PlanCacheStats stats = batch.plan_cache()->stats();
    EXPECT_EQ(stats.probes,
              static_cast<uint64_t>(kRounds) * queries.size());
    EXPECT_EQ(stats.hits + stats.misses, stats.probes);
  }

  // Phase 2: a roomy cache where nothing is ever evicted. Every query with
  // a stable catalog inserts in round one and must hit in every later
  // round; only the query whose epoch the mutator keeps bumping may miss.
  {
    volcano::BatchOptions options;
    options.jobs = 8;
    options.plan_cache_entries = 4096;
    volcano::BatchOptimizer batch(rules_.get(), options);
    run_rounds(&batch);
    const volcano::PlanCacheStats stats = batch.plan_cache()->stats();
    EXPECT_EQ(stats.probes,
              static_cast<uint64_t>(kRounds) * queries.size());
    EXPECT_GE(stats.hits, static_cast<uint64_t>(kRounds - 1) *
                              (queries.size() - 1));
    EXPECT_EQ(stats.hits + stats.misses, stats.probes);
    EXPECT_EQ(stats.evictions, 0u);
  }

  stop.store(true, std::memory_order_release);
  mutator.join();
}

// ---------------------------------------------------------------------------
// Parameterized cache under concurrency (TSan-covered): 8 workers race
// constant-varying probes of ONE skeleton key — skeleton inserts, rebinds
// of the shared marker tree, LRU splices — and every served plan must
// still equal the serial cache-less reference for its own constants.

using ParameterizedCacheTest = OodbFixture;

TEST_F(ParameterizedCacheTest, RacingReboundProbesServeCorrectPlans) {
  constexpr int kVariants = 24;
  constexpr int kRounds = 3;
  workload::Workload w = MakeQ(5, 2, 3);
  algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
  ASSERT_NE(pq.skeleton, nullptr);

  // Constant-varying instances of the one skeleton, all against the same
  // catalog: every worker contends on the same cache key.
  std::vector<algebra::ExprPtr> variants;
  std::vector<double> ref_cost;
  std::vector<std::string> ref_plan;
  for (int v = 0; v < kVariants; ++v) {
    std::vector<algebra::Scalar> values;
    for (const algebra::ParamSlot& slot : pq.slots) {
      const int64_t domain =
          std::max<int64_t>(1, w.catalog.DistinctValues(slot.attr));
      values.push_back(algebra::Scalar::Int((7 * v + 1) % domain));
    }
    algebra::ExprPtr bound = algebra::BindQuery(*pq.skeleton, values);
    ASSERT_NE(bound, nullptr);
    volcano::Optimizer ref(rules_.get(), &w.catalog, {});
    auto plan = ref.Optimize(*bound);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ref_cost.push_back(plan->cost);
    ref_plan.push_back(plan->root->ToString(*rules_->algebra));
    variants.push_back(std::move(bound));
  }

  std::vector<volcano::BatchQuery> queries;
  for (const auto& q : variants) {
    queries.push_back(volcano::BatchQuery{q.get(), &w.catalog});
  }
  volcano::BatchOptions options;
  options.jobs = 8;
  options.plan_cache_entries = 1024;
  options.optimizer.param_cache = true;
  volcano::BatchOptimizer batch(rules_.get(), options);
  for (int round = 0; round < kRounds; ++round) {
    auto results = batch.OptimizeAll(queries);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].plan.ok())
          << "round " << round << " variant " << i << ": "
          << results[i].plan.status().ToString();
      EXPECT_EQ(results[i].plan->cost, ref_cost[i])
          << "round " << round << " variant " << i;
      EXPECT_EQ(results[i].plan->root->ToString(*rules_->algebra),
                ref_plan[i])
          << "round " << round << " variant " << i;
    }
  }
  const volcano::PlanCacheStats stats = batch.plan_cache()->stats();
  EXPECT_EQ(stats.probes,
            static_cast<uint64_t>(kRounds) * queries.size());
  EXPECT_EQ(stats.hits + stats.misses, stats.probes);
  // After the cold round every probe rebinds from the skeleton: at least
  // the two fully-warm rounds' worth of hits are parameterized.
  EXPECT_GE(stats.param_hits,
            static_cast<uint64_t>(kRounds - 1) * queries.size());
  EXPECT_GE(stats.param_inserts, 1u);
  EXPECT_EQ(stats.unrebindable_inserts, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent memo (TSan-covered): racing CopyIn into one shared memo, and
// the full intra-query parallel search (insert + merge + optimize from
// several workers over one memo).

using ConcurrentMemoTest = OodbFixture;

TEST_F(ConcurrentMemoTest, ParallelCopyInConvergesToTheSerialMemo) {
  workload::Workload w = MakeQ(1, 3, 1);

  // Serial reference: one CopyIn into a private serial memo.
  volcano::Memo serial(rules_.get(), {});
  ASSERT_OK_AND_ASSIGN(volcano::GroupId serial_root, serial.CopyIn(*w.query));
  (void)serial_root;

  volcano::Memo memo(rules_.get(), {}, /*shared_store=*/nullptr,
                     volcano::MemoMode::kConcurrent);
  constexpr int kThreads = 8;
  std::vector<volcano::GroupId> roots(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto r = memo.CopyIn(*w.query);
      roots[t] = r.ok() ? *r : volcano::GroupId{-1};
    });
  }
  for (auto& th : threads) th.join();

  // Every thread resolved the identical tree to one equivalence class.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(roots[t], volcano::GroupId{-1});
    EXPECT_EQ(memo.Find(roots[t]), memo.Find(roots[0])) << "thread " << t;
  }
  // And racing dedup created exactly the serial group structure.
  EXPECT_EQ(memo.NumGroups(), serial.NumGroups());
  EXPECT_EQ(memo.NumExprs(), serial.NumExprs());
  EXPECT_GT(memo.arena_bytes(), 0u);
}

TEST_F(ConcurrentMemoTest, RacingCopyInsOfOverlappingTreesDedup) {
  // Q1..Q8 at the same seed share leaf subtrees (same catalogs per shape);
  // interleaved CopyIns must dedup against whatever the other threads
  // already published, never duplicate a group.
  workload::Workload w = MakeQ(1, 4, 1);
  volcano::Memo memo(rules_.get(), {}, /*shared_store=*/nullptr,
                     volcano::MemoMode::kConcurrent);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int rep = 0; rep < 4; ++rep) {
        auto r = memo.CopyIn(*w.query);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (auto& th : threads) th.join();

  volcano::Memo serial(rules_.get(), {});
  ASSERT_TRUE(serial.CopyIn(*w.query).ok());
  EXPECT_EQ(memo.NumGroups(), serial.NumGroups());
  EXPECT_EQ(memo.NumExprs(), serial.NumExprs());
  const volcano::MemoTallies t = memo.tallies();
  // 32 CopyIns of the same tree: everything after the first insert of each
  // expression is a dedup.
  EXPECT_GT(t.exprs_deduped, 0u);
}

TEST_F(ConcurrentMemoTest, ParallelSearchStressMatchesSerialPlans) {
  // The real insert/merge/optimize stress: the intra-query parallel search
  // runs transformation inserts (which trigger cross-group merges) and
  // winner-table updates from several workers over one concurrent memo.
  // The clique shape maximizes merge traffic. Correctness bar: the final
  // plan must be cost-identical to the serial search.
  struct Case {
    workload::JoinShape shape;
    int joins;
  };
  for (const Case& c : {Case{workload::JoinShape::kStar, 4},
                        Case{workload::JoinShape::kClique, 4}}) {
    workload::QuerySpec spec = workload::PaperQuery(1, c.joins, 1);
    spec.shape = c.shape;
    auto w = workload::MakeWorkload(*rules_->algebra, spec);
    ASSERT_TRUE(w.ok()) << w.status().ToString();

    volcano::Optimizer serial(rules_.get(), &w->catalog, {});
    auto ref = serial.Optimize(*w->query);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();

    volcano::OptimizerOptions options;
    options.search_jobs = 4;
    volcano::Optimizer parallel(rules_.get(), &w->catalog, options);
    auto plan = parallel.Optimize(*w->query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan->cost, ref->cost);
    EXPECT_EQ(plan->root->ToString(*rules_->algebra),
              ref->root->ToString(*rules_->algebra));
    // The parallel memo explored at least the serial group structure.
    EXPECT_GE(parallel.stats().groups, serial.stats().groups);
  }
}

// ---------------------------------------------------------------------------
// Executor observability under concurrency (TSan-covered): N threads each
// build and run their own instrumented iterator over one shared read-only
// plan/database, then rendezvous on the shared aggregate surfaces — the
// sharded ExecMetrics series, the mutex-protected CardinalityFeedback, and
// a concurrent DescriptorStore interning fingerprints from every thread.

#if PRAIRIE_EXEC_STATS
TEST(ExecObserveConcurrencyTest, SharedAggregatesTakeParallelFlushes) {
  // A 256-row table with k in [0, 16); the filter selects k == 3.
  algebra::PropertySchema schema;
  ASSERT_TRUE(schema.Add("num_records", algebra::ValueType::kReal).ok());
  algebra::Algebra algebra;
  const algebra::OpId scan_op = *algebra.RegisterAlgorithm("Scan", 1);
  const algebra::OpId filter_op = *algebra.RegisterAlgorithm("Filter", 1);
  exec::RowSchema row_schema;
  row_schema.attrs = {algebra::Attr{"T", "oid"}, algebra::Attr{"T", "k"}};
  exec::Table table("T", row_schema);
  size_t expected = 0;
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(
        table.Append({exec::Datum::Int(i), exec::Datum::Int(i % 16)}).ok());
    if (i % 16 == 3) ++expected;
  }
  exec::Database db;
  ASSERT_TRUE(db.AddTable(std::move(table)).ok());
  exec::ExecutorRegistry registry;
  ASSERT_TRUE(registry
                  .Register("Scan",
                            [](const algebra::Expr&, exec::PlanBuilder& b)
                                -> common::Result<exec::IterPtr> {
                              auto t = b.ChildTable(0);
                              if (!t.ok()) return t.status();
                              return exec::MakeTableScan(*t);
                            })
                  .ok());
  ASSERT_TRUE(registry
                  .Register("Filter",
                            [](const algebra::Expr&, exec::PlanBuilder& b)
                                -> common::Result<exec::IterPtr> {
                              auto child = b.BuildChild(0);
                              if (!child.ok()) return child.status();
                              return exec::MakeFilter(
                                  std::move(*child),
                                  algebra::Predicate::EqConst(
                                      algebra::Attr{"T", "k"},
                                      algebra::Scalar::Int(3)));
                            })
                  .ok());
  auto desc = [&](double est) {
    algebra::Descriptor d(&schema);
    EXPECT_TRUE(d.Set("num_records", algebra::Value::Real(est)).ok());
    return d;
  };
  std::vector<algebra::ExprPtr> leaf;
  leaf.push_back(algebra::Expr::MakeFile("T", algebra::Descriptor(&schema)));
  std::vector<algebra::ExprPtr> kids;
  kids.push_back(algebra::Expr::MakeOp(scan_op, std::move(leaf), desc(256)));
  const algebra::ExprPtr plan =
      algebra::Expr::MakeOp(filter_op, std::move(kids), desc(16));

  common::MetricsRegistry metrics_registry;
  const exec::ExecMetrics metrics =
      exec::ExecMetrics::ForRegistry(&metrics_registry);
  exec::CardinalityFeedback feedback;
  algebra::DescriptorStore store(&schema, algebra::StoreMode::kConcurrent);

  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int run = 0; run < kRunsPerThread; ++run) {
        exec::ExecStats stats;  // Per-thread collector, like TraceSink.
        auto it = registry.Build(*plan, algebra, db, &stats);
        if (!it.ok()) {
          ++failures;
          return;
        }
        auto rows = exec::CollectAll(it->get());
        if (!rows.ok() || rows->size() != expected ||
            stats.root() == nullptr || stats.root()->rows != expected) {
          ++failures;
          return;
        }
        metrics.FlushExecStats(stats);
        if (!exec::RecordPlanFeedback(*plan, stats, &store, &feedback)
                 .ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  constexpr uint64_t kRuns = uint64_t{kThreads} * kRunsPerThread;
  EXPECT_EQ(metrics.queries->Value(), kRuns);
  EXPECT_EQ(metrics.operators->Value(), 2 * kRuns);
  EXPECT_EQ(metrics.query_latency_ns->Snapshot().count, kRuns);
  // Every thread fingerprinted the same two sub-plans.
  EXPECT_EQ(feedback.size(), 2u);
  for (const auto& [key, entry] : feedback.Snapshot()) {
    EXPECT_EQ(entry.observations, kRuns) << key;
  }
}
#endif  // PRAIRIE_EXEC_STATS

// ---------------------------------------------------------------------------
// Windowed time-series scrapes racing metric writers, and the DiagService
// trigger path under concurrent Check() callers.

TEST(TimeSeriesConcurrencyTest, ScrapesRaceWithMetricWriters) {
  common::MetricsRegistry registry;
  common::Counter* counter = registry.GetCounter("ts_race_total");
  common::Histogram* hist = registry.GetHistogram("ts_race_ns");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> writers;
  std::atomic<int> started{0};
  std::ostringstream out;
  common::TimeSeriesOptions opt;
  opt.interval_ms = 0;  // Every scrape call writes a window.
  common::TimeSeriesWriter writer(&registry, &out, opt);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&]() {
      started.fetch_add(1);
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
        hist->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  while (started.load() < kThreads) std::this_thread::yield();
  // Scrape while the writers hammer the shards; Sample() uses the same
  // relaxed merges as the exporters, so every window is a consistent-
  // enough snapshot and deltas never go negative (saturating).
  for (int i = 0; i < 25; ++i) EXPECT_TRUE(writer.MaybeScrape(true));
  for (auto& t : writers) t.join();
  EXPECT_TRUE(writer.MaybeScrape(true));  // Quiesced final window.
  EXPECT_EQ(writer.seq(), 26u);

  // Per-window counter deltas must sum to the exact final total: windows
  // partition the increments (relaxed loads may split one thread's burst
  // across windows but never double-count or lose).
  uint64_t delta_sum = 0;
  uint64_t last_total = 0;
  const std::string text = out.str();
  size_t pos = 0;
  while ((pos = text.find("\"metric\":\"ts_race_total\"", pos)) !=
         std::string::npos) {
    const size_t d = text.find("\"delta\":", pos);
    const size_t tot = text.find("\"total\":", pos);
    ASSERT_NE(d, std::string::npos);
    ASSERT_NE(tot, std::string::npos);
    delta_sum += std::strtoull(text.c_str() + d + 8, nullptr, 10);
    last_total = std::strtoull(text.c_str() + tot + 8, nullptr, 10);
    pos = tot;
  }
  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(delta_sum, kTotal);
  EXPECT_EQ(last_total, kTotal);
}

TEST(DiagConcurrencyTest, StormCrossingObservedByExactlyOneCaller) {
  // Each Check() contributes one reject; every full multiple of the
  // threshold must fire kCacheStorm exactly once no matter how the
  // threads interleave.
  volcano::DiagOptions opt;
  opt.cache_storm_threshold = 64;
  opt.on_budget_exhausted = false;
  volcano::DiagService diag(opt);
  volcano::OptimizerStats stats;
  stats.cache_param_rejects = 1;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 8 * 64;  // 8 crossings per thread's worth.
  std::atomic<size_t> storms{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        if (diag.Check(0.0, stats) == volcano::DiagTrigger::kCacheStorm) {
          storms.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(storms.load(), uint64_t{kThreads} * kPerThread / 64);
}

}  // namespace
}  // namespace prairie

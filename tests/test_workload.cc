// Unit tests for the workload generators: the paper's query naming,
// expression shapes, catalog structure, determinism, and database
// population consistency.

#include <gtest/gtest.h>

#include <vector>

#include "algebra/descriptor_store.h"
#include "algebra/param.h"
#include "optimizers/props.h"
#include "optimizers/volcano_hand.h"
#include "workload/traffic.h"
#include "workload/workload.h"

namespace prairie::workload {
namespace {

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto PRAIRIE_CONCAT(_res_, __LINE__) = (rexpr);    \
  ASSERT_TRUE(PRAIRIE_CONCAT(_res_, __LINE__).ok())  \
      << PRAIRIE_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(PRAIRIE_CONCAT(_res_, __LINE__)).ValueUnsafe();

const std::shared_ptr<volcano::RuleSet>& Rules() {
  static auto rules = [] {
    auto v = opt::BuildOodbVolcano();
    EXPECT_TRUE(v.ok());
    return *v;
  }();
  return rules;
}

TEST(PaperQueryNaming, MatchesTable5) {
  struct Expect {
    ExprKind expr;
    bool idx;
  };
  const Expect expected[9] = {{},
                              {ExprKind::kE1, false},
                              {ExprKind::kE1, true},
                              {ExprKind::kE2, false},
                              {ExprKind::kE2, true},
                              {ExprKind::kE3, false},
                              {ExprKind::kE3, true},
                              {ExprKind::kE4, false},
                              {ExprKind::kE4, true}};
  for (int q = 1; q <= 8; ++q) {
    QuerySpec spec = PaperQuery(q, 3, 42);
    EXPECT_EQ(spec.expr, expected[q].expr) << "Q" << q;
    EXPECT_EQ(spec.with_indexes, expected[q].idx) << "Q" << q;
    EXPECT_EQ(spec.num_joins, 3);
    EXPECT_EQ(spec.seed, 42u);
  }
}

TEST(MakeWorkload, ExpressionShapes) {
  const auto& algebra = *Rules()->algebra;
  for (int e = 1; e <= 4; ++e) {
    QuerySpec spec;
    spec.expr = static_cast<ExprKind>(e);
    spec.num_joins = 2;
    spec.seed = 9;
    ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(algebra, spec));
    std::string text = w.query->ToString(algebra);
    bool has_mat = text.find("MAT(") != std::string::npos;
    bool has_select = text.find("SELECT(") != std::string::npos;
    EXPECT_EQ(has_mat, e == 2 || e == 4) << text;
    EXPECT_EQ(has_select, e == 3 || e == 4) << text;
    // N joins over N+1 classes.
    int joins = 0;
    for (size_t p = text.find("JOIN("); p != std::string::npos;
         p = text.find("JOIN(", p + 1)) {
      ++joins;
    }
    EXPECT_EQ(joins, 2) << text;
    EXPECT_TRUE(w.query->IsLogical(algebra));
  }
}

TEST(MakeWorkload, CatalogStructure) {
  QuerySpec spec = PaperQuery(4, /*num_joins=*/3, /*seed=*/5);  // E2 + idx.
  ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(*Rules()->algebra, spec));
  // 4 classes + 4 MAT target classes.
  EXPECT_EQ(w.catalog.size(), 8u);
  for (int i = 1; i <= 4; ++i) {
    const catalog::StoredFile* f = w.catalog.Find("C" + std::to_string(i));
    ASSERT_NE(f, nullptr);
    EXPECT_GE(f->cardinality(), spec.min_card);
    EXPECT_LE(f->cardinality(), spec.max_card);
    EXPECT_TRUE(f->HasIndexOn("bc"));
    const catalog::AttributeDef* ref = f->FindAttr("ref");
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(ref->ref_class, "T" + std::to_string(i));
    EXPECT_NE(w.catalog.Find(ref->ref_class), nullptr);
  }
  // E1 catalogs have neither targets nor refs.
  QuerySpec e1 = PaperQuery(1, 3, 5);
  ASSERT_OK_AND_ASSIGN(Workload w1, MakeWorkload(*Rules()->algebra, e1));
  EXPECT_EQ(w1.catalog.size(), 4u);
  EXPECT_EQ(w1.catalog.Find("C1")->FindAttr("ref"), nullptr);
  EXPECT_FALSE(w1.catalog.Find("C1")->HasIndexOn("bc"));
}

TEST(MakeWorkload, DeterministicPerSeed) {
  QuerySpec spec = PaperQuery(7, 3, 1234);
  ASSERT_OK_AND_ASSIGN(Workload a, MakeWorkload(*Rules()->algebra, spec));
  ASSERT_OK_AND_ASSIGN(Workload b, MakeWorkload(*Rules()->algebra, spec));
  EXPECT_EQ(a.query->ToString(*Rules()->algebra),
            b.query->ToString(*Rules()->algebra));
  EXPECT_TRUE(a.query->Equals(*b.query));
  EXPECT_EQ(a.catalog.Find("C1")->cardinality(),
            b.catalog.Find("C1")->cardinality());
  // Different seeds give different cardinalities (with high probability
  // across three classes).
  spec.seed = 99;
  ASSERT_OK_AND_ASSIGN(Workload c, MakeWorkload(*Rules()->algebra, spec));
  bool any_diff = false;
  for (int i = 1; i <= 4; ++i) {
    any_diff |= a.catalog.Find("C" + std::to_string(i))->cardinality() !=
                c.catalog.Find("C" + std::to_string(i))->cardinality();
  }
  EXPECT_TRUE(any_diff);
}

TEST(MakeWorkload, StructureSeedZeroPreservesLegacyStream) {
  // structure_seed = 0 is the default and must reproduce the historical
  // single-stream generation byte for byte: the same queries and catalogs
  // that every committed baseline and golden file were generated from.
  QuerySpec legacy = PaperQuery(7, 3, 1234);
  QuerySpec explicit_zero = PaperQuery(7, 3, 1234);
  explicit_zero.structure_seed = 0;
  ASSERT_OK_AND_ASSIGN(Workload a, MakeWorkload(*Rules()->algebra, legacy));
  ASSERT_OK_AND_ASSIGN(Workload b,
                       MakeWorkload(*Rules()->algebra, explicit_zero));
  // TreeString includes descriptor annotations (the join predicates), which
  // the flat ToString omits.
  EXPECT_EQ(a.query->TreeString(*Rules()->algebra),
            b.query->TreeString(*Rules()->algebra));
  EXPECT_TRUE(a.query->Equals(*b.query));
  EXPECT_EQ(a.catalog.ToString(), b.catalog.ToString());
}

TEST(MakeWorkload, StructureSeedVariesJoinAttrsButNotCatalog) {
  // A nonzero structure_seed moves the join-attribute choices onto their
  // own RNG stream: the catalog (cardinalities, distinct counts) is fixed
  // entirely by `seed`, while the query shape may change. Scan a few
  // structure seeds to find one that actually flips an attribute choice;
  // each join draws two fair coins, so a handful of seeds suffices.
  QuerySpec base = PaperQuery(7, 3, 1234);
  ASSERT_OK_AND_ASSIGN(Workload ref, MakeWorkload(*Rules()->algebra, base));
  // TreeString carries the join predicates (descriptor annotations);
  // the flat ToString only shows operator and class names.
  const std::string ref_query = ref.query->TreeString(*Rules()->algebra);
  bool any_query_diff = false;
  for (uint64_t s = 1; s <= 8; ++s) {
    QuerySpec spec = base;
    spec.structure_seed = s;
    ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(*Rules()->algebra, spec));
    EXPECT_EQ(w.catalog.ToString(), ref.catalog.ToString())
        << "structure_seed " << s << " must not perturb the catalog";
    any_query_diff |=
        w.query->TreeString(*Rules()->algebra) != ref_query;
  }
  EXPECT_TRUE(any_query_diff)
      << "no structure seed in [1,8] changed any join attribute";
}

TEST(MakeWorkload, StructureSeedIsDeterministic) {
  QuerySpec spec = PaperQuery(7, 3, 1234);
  spec.structure_seed = 5;
  ASSERT_OK_AND_ASSIGN(Workload a, MakeWorkload(*Rules()->algebra, spec));
  ASSERT_OK_AND_ASSIGN(Workload b, MakeWorkload(*Rules()->algebra, spec));
  EXPECT_EQ(a.query->TreeString(*Rules()->algebra),
            b.query->TreeString(*Rules()->algebra));
  EXPECT_TRUE(a.query->Equals(*b.query));
}

TEST(MakeWorkload, SelectionConstantsAreInDomain) {
  QuerySpec spec = PaperQuery(5, 3, 77);
  spec.min_card = 5;
  spec.max_card = 20;
  ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(*Rules()->algebra, spec));
  auto sel = w.query->descriptor().Get(opt::kSelectionPredicate);
  ASSERT_TRUE(sel.ok());
  for (const algebra::PredicateRef& c : sel->AsPred()->Conjuncts()) {
    ASSERT_TRUE(c->kind() == algebra::Predicate::Kind::kCmp);
    const algebra::Attr& attr =
        c->left().is_attr() ? c->left().attr : c->right().attr;
    const algebra::Scalar& k =
        c->left().is_attr() ? c->right().scalar : c->left().scalar;
    int64_t domain = w.catalog.DistinctValues(attr);
    ASSERT_TRUE(std::holds_alternative<int64_t>(k.v));
    EXPECT_LT(std::get<int64_t>(k.v), domain) << attr.ToString();
    EXPECT_GE(std::get<int64_t>(k.v), 0);
  }
}

TEST(MakeWorkload, RejectsZeroJoins) {
  QuerySpec spec;
  spec.num_joins = 0;
  EXPECT_FALSE(MakeWorkload(*Rules()->algebra, spec).ok());
}

TEST(MakeDatabase, ConsistentWithCatalog) {
  QuerySpec spec = PaperQuery(8, 2, 31);  // E4 with indices.
  spec.min_card = 5;
  spec.max_card = 20;
  ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(*Rules()->algebra, spec));
  ASSERT_OK_AND_ASSIGN(exec::Database db, MakeDatabase(w.catalog, 4));
  for (const std::string& name : w.catalog.FileNames()) {
    const catalog::StoredFile* meta = w.catalog.Find(name);
    const exec::Table* table = db.Find(name);
    ASSERT_NE(table, nullptr) << name;
    EXPECT_EQ(static_cast<int64_t>(table->NumRows()), meta->cardinality());
    // oid column equals the row position.
    int oid_pos = table->schema().Find(algebra::Attr{name, "oid"});
    ASSERT_GE(oid_pos, 0);
    for (size_t r = 0; r < table->NumRows(); ++r) {
      EXPECT_EQ(table->row(r)[static_cast<size_t>(oid_pos)],
                exec::Datum::Int(static_cast<int64_t>(r)));
    }
    // Reference OIDs land inside the target extent.
    for (const catalog::AttributeDef& a : meta->attrs()) {
      if (!a.is_reference()) continue;
      int pos = table->schema().Find(algebra::Attr{name, a.name});
      ASSERT_GE(pos, 0);
      const exec::Table* target = db.Find(a.ref_class);
      ASSERT_NE(target, nullptr);
      for (size_t r = 0; r < table->NumRows(); ++r) {
        int64_t oid =
            std::get<int64_t>(table->row(r)[static_cast<size_t>(pos)].v);
        EXPECT_GE(oid, 0);
        EXPECT_LT(oid, static_cast<int64_t>(target->NumRows()));
      }
    }
    // Declared indexes exist.
    for (const catalog::IndexDef& idx : meta->indices()) {
      EXPECT_TRUE(table->HasIndex(idx.attr)) << name << "." << idx.attr;
    }
  }
}

TEST(MakeDatabase, DeterministicPerSeed) {
  QuerySpec spec = PaperQuery(1, 2, 8);
  spec.min_card = 5;
  spec.max_card = 15;
  ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(*Rules()->algebra, spec));
  ASSERT_OK_AND_ASSIGN(exec::Database a, MakeDatabase(w.catalog, 3));
  ASSERT_OK_AND_ASSIGN(exec::Database b, MakeDatabase(w.catalog, 3));
  EXPECT_EQ(a.Find("C1")->rows(), b.Find("C1")->rows());
  ASSERT_OK_AND_ASSIGN(exec::Database c, MakeDatabase(w.catalog, 4));
  EXPECT_NE(a.Find("C1")->rows(), c.Find("C1")->rows());
}

// ---------------------------------------------------------------------------
// Join-graph shapes (chain / star / clique).

// Collects the predicate text of every JOIN node, outermost first. Joins
// are the only binary nodes of the generated trees; their predicate lives
// in the descriptor's join_predicate property.
std::vector<std::string> JoinPredicates(const algebra::Expr& e,
                                        const algebra::Algebra& algebra) {
  auto props = opt::Props::FromSchema(algebra.properties());
  EXPECT_TRUE(props.ok());
  std::vector<std::string> preds;
  std::vector<const algebra::Expr*> stack{&e};
  while (!stack.empty()) {
    const algebra::Expr* cur = stack.back();
    stack.pop_back();
    if (cur->num_children() == 2) {
      preds.push_back(
          cur->descriptor().Get(props->join_predicate).AsPred()->ToString());
    }
    for (const auto& c : cur->children()) stack.push_back(c.get());
  }
  return preds;
}

TEST(MakeWorkload, DefaultShapeIsChainAndUnchanged) {
  QuerySpec spec = PaperQuery(1, 3, 7);
  ASSERT_OK_AND_ASSIGN(Workload legacy, MakeWorkload(*Rules()->algebra, spec));
  spec.shape = JoinShape::kChain;
  ASSERT_OK_AND_ASSIGN(Workload chain, MakeWorkload(*Rules()->algebra, spec));
  // kChain is the default and is draw-for-draw identical to the historical
  // generator.
  EXPECT_EQ(legacy.query->ToString(*Rules()->algebra),
            chain.query->ToString(*Rules()->algebra));
  // Each chain predicate links adjacent classes C_i, C_{i+1}.
  auto preds = JoinPredicates(*chain.query, *Rules()->algebra);
  ASSERT_EQ(preds.size(), 3u);
  for (const std::string& p : preds) EXPECT_NE(p.find(" = "), std::string::npos);
}

TEST(MakeWorkload, StarShapePredicatesAllReferenceTheHub) {
  QuerySpec spec = PaperQuery(1, 4, 7);
  spec.shape = JoinShape::kStar;
  ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(*Rules()->algebra, spec));
  auto preds = JoinPredicates(*w.query, *Rules()->algebra);
  ASSERT_EQ(preds.size(), 4u);
  for (const std::string& p : preds) {
    EXPECT_NE(p.find("C1."), std::string::npos) << p;
  }
  // Catalog is shape-independent: same classes as the chain query.
  EXPECT_EQ(w.catalog.size(), 5u);
}

TEST(MakeWorkload, CliqueShapePredicatesEveryPair) {
  QuerySpec spec = PaperQuery(1, 3, 7);
  spec.shape = JoinShape::kClique;
  ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(*Rules()->algebra, spec));
  // Join i (1-based class C_{i+1}) carries one equality per earlier class:
  // the union over all joins covers every pair.
  auto preds = JoinPredicates(*w.query, *Rules()->algebra);
  ASSERT_EQ(preds.size(), 3u);
  int eqs = 0;
  for (const std::string& p : preds) {
    for (size_t at = p.find(" = "); at != std::string::npos;
         at = p.find(" = ", at + 1)) {
      ++eqs;
    }
  }
  // 4 classes -> C(4,2) = 6 equality conjuncts across the three joins.
  EXPECT_EQ(eqs, 6);
  // The innermost (first applied) join predicates exactly one pair; the
  // outermost references every earlier class.
  const std::string& outer = preds.front();
  for (int j = 1; j <= 3; ++j) {
    EXPECT_NE(outer.find("C" + std::to_string(j) + "."), std::string::npos)
        << outer;
  }
}

TEST(MakeWorkload, ShapesShareTheCatalogDraws) {
  // Shape only affects join predicates, never cardinalities or indexes.
  QuerySpec spec = PaperQuery(2, 3, 11);
  ASSERT_OK_AND_ASSIGN(Workload chain, MakeWorkload(*Rules()->algebra, spec));
  spec.shape = JoinShape::kStar;
  ASSERT_OK_AND_ASSIGN(Workload star, MakeWorkload(*Rules()->algebra, spec));
  spec.shape = JoinShape::kClique;
  ASSERT_OK_AND_ASSIGN(Workload clique, MakeWorkload(*Rules()->algebra, spec));
  for (int i = 1; i <= 4; ++i) {
    const std::string name = "C" + std::to_string(i);
    ASSERT_NE(chain.catalog.Find(name), nullptr);
    EXPECT_EQ(chain.catalog.Find(name)->cardinality(),
              star.catalog.Find(name)->cardinality());
    EXPECT_EQ(chain.catalog.Find(name)->cardinality(),
              clique.catalog.Find(name)->cardinality());
  }
}

// ---------------------------------------------------------------------------
// Parameter-varying traffic (DESIGN.md §8).

TEST(MakeWorkload, ParamSeedVariesOnlyTheSelectionConstants) {
  QuerySpec spec = PaperQuery(5, 3, 21);
  ASSERT_OK_AND_ASSIGN(Workload legacy, MakeWorkload(*Rules()->algebra, spec));
  spec.param_seed = 7;
  ASSERT_OK_AND_ASSIGN(Workload a, MakeWorkload(*Rules()->algebra, spec));
  spec.param_seed = 8;
  ASSERT_OK_AND_ASSIGN(Workload b, MakeWorkload(*Rules()->algebra, spec));

  // The catalog draws never touch the param stream.
  EXPECT_EQ(legacy.catalog.ToString(), a.catalog.ToString());
  EXPECT_EQ(a.catalog.ToString(), b.catalog.ToString());

  // The queries differ in their serialized bytes (different literals;
  // Expr::ToString elides predicates, so compare fingerprints)...
  const auto& algebra = *Rules()->algebra;
  algebra::DescriptorStore store(&algebra.properties(),
                                 algebra::StoreMode::kSerial);
  std::string qa, qb;
  a.query->Fingerprint(&store, &qa);
  b.query->Fingerprint(&store, &qb);
  EXPECT_NE(qa, qb);

  // ...but canonicalize to byte-identical skeletons: literals are the ONLY
  // difference.
  algebra::ParameterizedQuery pa = algebra::ParameterizeQuery(*a.query);
  algebra::ParameterizedQuery pb = algebra::ParameterizeQuery(*b.query);
  algebra::ParameterizedQuery pl = algebra::ParameterizeQuery(*legacy.query);
  ASSERT_NE(pa.skeleton, nullptr);
  ASSERT_NE(pb.skeleton, nullptr);
  ASSERT_NE(pl.skeleton, nullptr);
  std::string fa, fb, fl;
  pa.skeleton->Fingerprint(&store, &fa);
  pb.skeleton->Fingerprint(&store, &fb);
  pl.skeleton->Fingerprint(&store, &fl);
  EXPECT_EQ(fa, fb);
  EXPECT_EQ(fa, fl);
  EXPECT_EQ(pa.slots.size(), 4u);  // one bc_i = ?k per class
}

TEST(MakeWorkload, BindQueryRoundTripsToTheOriginalQuery) {
  QuerySpec spec = PaperQuery(7, 2, 33);
  spec.param_seed = 3;
  ASSERT_OK_AND_ASSIGN(Workload w, MakeWorkload(*Rules()->algebra, spec));
  algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*w.query);
  ASSERT_NE(pq.skeleton, nullptr);
  ASSERT_FALSE(pq.slots.empty());

  std::vector<algebra::Scalar> values;
  for (const algebra::ParamSlot& s : pq.slots) values.push_back(s.value);
  algebra::ExprPtr rebound = algebra::BindQuery(*pq.skeleton, values);
  ASSERT_NE(rebound, nullptr);

  algebra::DescriptorStore store(&Rules()->algebra->properties(),
                                 algebra::StoreMode::kSerial);
  std::string original, round_trip;
  w.query->Fingerprint(&store, &original);
  rebound->Fingerprint(&store, &round_trip);
  EXPECT_EQ(original, round_trip);

  // An out-of-range ordinal binds to null, never to a wrong query.
  values.pop_back();
  EXPECT_EQ(algebra::BindQuery(*pq.skeleton, values), nullptr);
}

TEST(ZipfSampler, RankFrequencyFollowsThePowerLaw) {
  // Under s = 1, rank k should be drawn proportionally to 1/(k+1): rank 0
  // twice as often as rank 1 and n times as often as rank n-1.
  ZipfSampler zipf(8, 1.0, 99);
  std::vector<int> counts(8, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const int k = zipf.Next();
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 8);
    ++counts[k];
  }
  for (int k = 1; k < 8; ++k) {
    EXPECT_LT(counts[k], counts[k - 1]) << "rank " << k;
  }
  const double head_to_second =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(head_to_second, 2.0, 0.3);
  const double head_to_tail =
      static_cast<double>(counts[0]) / static_cast<double>(counts[7]);
  EXPECT_NEAR(head_to_tail, 8.0, 2.0);
}

TEST(ZipfSampler, DeterministicUnderAFixedSeed) {
  ZipfSampler a(16, 1.1, 42);
  ZipfSampler b(16, 1.1, 42);
  ZipfSampler c(16, 1.1, 43);
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const int ka = a.Next();
    EXPECT_EQ(ka, b.Next());
    differs = differs || ka != c.Next();
  }
  EXPECT_TRUE(differs);  // a different seed is a different stream
}

TEST(TrafficGenerator, DeterministicAndTenantStreamsAreIndependent) {
  TrafficOptions options;
  options.num_skeletons = 8;
  options.num_tenants = 3;
  ASSERT_OK_AND_ASSIGN(TrafficGenerator a,
                       TrafficGenerator::Make(*Rules()->algebra, options));
  ASSERT_OK_AND_ASSIGN(TrafficGenerator b,
                       TrafficGenerator::Make(*Rules()->algebra, options));

  const auto& algebra = *Rules()->algebra;
  std::vector<std::vector<int>> per_tenant(3);
  for (int i = 0; i < 300; ++i) {
    TrafficRequest ra = a.Next();
    TrafficRequest rb = b.Next();
    // Same options + seed: the two generators replay one stream.
    EXPECT_EQ(ra.skeleton, rb.skeleton);
    EXPECT_EQ(ra.tenant, rb.tenant);
    EXPECT_EQ(ra.query->ToString(algebra), rb.query->ToString(algebra));
    per_tenant[static_cast<size_t>(ra.tenant)].push_back(ra.skeleton);
  }
  // Tenants are served round-robin, each drawing from its own stream: no
  // two tenants replay the same skeleton sequence.
  ASSERT_EQ(per_tenant[0].size(), 100u);
  EXPECT_NE(per_tenant[0], per_tenant[1]);
  EXPECT_NE(per_tenant[1], per_tenant[2]);
}

TEST(TrafficGenerator, RequestsVaryOnlyInConstantsWithinASkeleton) {
  TrafficOptions options;
  // Skeleton i is the Q{(i%8)+1} template: 8 skeletons cover Q5..Q8, the
  // parameterized (selection-bearing) half of the pool.
  options.num_skeletons = 8;
  options.num_tenants = 2;
  ASSERT_OK_AND_ASSIGN(TrafficGenerator gen,
                       TrafficGenerator::Make(*Rules()->algebra, options));
  algebra::DescriptorStore store(&Rules()->algebra->properties(),
                                 algebra::StoreMode::kSerial);
  // Requests of one parameterized skeleton must canonicalize to one
  // skeleton fingerprint even as their rendered constants vary.
  std::vector<std::string> fingerprints(8);
  std::vector<bool> seen(8, false);
  bool constants_varied = false;
  std::vector<std::string> last_text(8);
  for (int i = 0; i < 200; ++i) {
    TrafficRequest r = gen.Next();
    if (!gen.parameterized(r.skeleton)) continue;
    algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(*r.query);
    ASSERT_NE(pq.skeleton, nullptr) << "skeleton " << r.skeleton;
    std::string fp;
    pq.skeleton->Fingerprint(&store, &fp);
    const size_t k = static_cast<size_t>(r.skeleton);
    if (seen[k]) {
      EXPECT_EQ(fp, fingerprints[k]) << "skeleton " << r.skeleton;
    } else {
      fingerprints[k] = fp;
      seen[k] = true;
    }
    std::string bytes;
    r.query->Fingerprint(&store, &bytes);
    if (!last_text[k].empty() && bytes != last_text[k]) {
      constants_varied = true;
    }
    last_text[k] = std::move(bytes);
  }
  EXPECT_TRUE(constants_varied);
}

}  // namespace
}  // namespace prairie::workload

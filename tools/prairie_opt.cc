// Command-line optimizer driver: generates one of the paper's workloads
// (or loads a custom Prairie specification), optimizes it, and prints the
// query, the chosen access plan, its cost, and search statistics.
//
//   prairie_opt [--spec relational|oodb|FILE] [--query 1..8]
//               [--joins N] [--seed S] [--expand-only] [--no-prune]
//               [--jobs N] [--batch K] [--plan-cache[=ENTRIES]]
//               [--param-cache[=ENTRIES]] [--traffic N] [--repeat R]
//               [--trace FILE] [--profile-rules] [--explain]
//               [--execute] [--analyze[=FILE.json]]
//               [--metrics FILE] [--dump-memo FILE.{dot,json}]
//               [--timeseries FILE[,MS]] [--slow-ms MS] [--slow-p99 K]
//               [--qerror-limit Q] [--slow-log FILE] [--diag-dir DIR]
//               [--diag-detail full|coarse] [--version] [--help]
//
// With --jobs and/or --batch the driver switches to batch mode: it
// generates K instances of the query (seeds S..S+K-1) and optimizes them
// concurrently on N worker threads through a BatchOptimizer — all workers
// interning into one shared concurrent descriptor store.
//
// --plan-cache enables the fingerprinted plan cache (optionally sized to
// ENTRIES; default 4096) and reports hit/miss/insert/evict/stale counts
// after the run. --repeat R re-optimizes the same workload R times — the
// natural way to watch the cache go from cold to warm. --param-cache
// additionally strips predicate constants out of the cache key, so
// queries differing only in literals share one skeleton entry and hits
// rebind the probe's constants into the cached plan (DESIGN.md §8).
//
// --traffic N switches to traffic mode: a TrafficGenerator emits N
// requests drawn from a Zipf-distributed pool of Q1-Q8-family skeletons
// (per-tenant streams, fresh constants per request) and drives them
// through the optimizer — serially, or on --jobs workers. The report
// shows cache hit rate and optimize-latency percentiles: the
// parameterized cache's headline numbers.
//
// Observability flags:
//   --trace FILE     write the search trace as Chrome trace_event JSON
//                    (load in chrome://tracing or ui.perfetto.dev).
//   --profile-rules  print the per-rule attempt/firing/latency table.
//   --explain        print the winning plan's provenance: which impl rule
//                    or enforcer produced each winner and the trans-rule
//                    chain that derived the implemented expression.
//   --metrics FILE   register the aggregate metrics bundle (counters +
//                    latency histograms) and write the registry after the
//                    run: Prometheus text exposition, or a JSON snapshot
//                    when FILE ends in .json. Works in batch mode too —
//                    workers share the bundle's sharded series.
//   --dump-memo FILE write the finished memo (groups, expressions,
//                    winners, provenance edges) as Graphviz DOT or JSON,
//                    by extension. Single-query mode only.
//
// Execution flags (single-query mode):
//   --execute        populate an in-memory database from the generated
//                    catalog (base classes capped at a few hundred rows so
//                    plans run in milliseconds), build the winning plan
//                    through the ExecutorRegistry, and run it. Exits 2 if
//                    the plan uses an algorithm with no registered
//                    executor.
//   --analyze[=FILE] EXPLAIN ANALYZE (implies --execute): print the plan
//                    annotated per operator with estimated rows, actual
//                    rows, elapsed ns and Q-error max(est/act, act/est);
//                    with =FILE, also write the stats tree as JSON.
//                    Combined with --trace, execution spans land on the
//                    same Chrome timeline as the optimizer's search; with
//                    --metrics, the prairie_exec_* series (incl. the
//                    log-2 Q-error histogram) are flushed to the registry.
//
// Diagnostics (docs/OBSERVABILITY.md):
//   --timeseries FILE[,MS]  windowed metrics: scrape the registry every MS
//                    milliseconds (default 250; 0 = every chunk) and write
//                    one JSON-lines interval-delta record per window —
//                    per-window p50/p99, counter deltas — instead of one
//                    end-of-run aggregate. Traffic/batch modes.
//   --slow-ms MS     anomaly trigger: flag queries slower than MS.
//   --slow-p99 K     adaptive trigger: flag queries slower than K x the
//                    running p99 of the query-latency histogram.
//   --qerror-limit Q flag executed queries whose max operator Q-error
//                    exceeds Q (single-query --execute/--analyze mode).
//   --slow-log FILE  one JSON-lines record per flagged query: fingerprint,
//                    trigger, cache outcome, latency breakdown, top-k rule
//                    latencies, est-vs-actual rows.
//   --diag-dir DIR   on each trigger, write a diagnostic bundle under
//                    DIR/<fingerprint>-<seq>/: manifest.json, the flight-
//                    recorder slice as Chrome trace JSON, a metrics delta,
//                    plan provenance, and (when executing) the EXPLAIN
//                    ANALYZE tree + cardinality feedback.
//   --diag-detail full|coarse  flight-recorder granularity (default
//                    coarse: group-level spans + winners, cheap enough to
//                    stay armed; full adds per-attempt spans).
//   Budget-exhausted searches and plan-cache reject/stale storms also
//   fire; the flight recorder is armed automatically in traffic/batch
//   mode whenever any diagnostics flag is given.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/descriptor_store.h"
#include "common/buildinfo.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "dsl/parser.h"
#include "exec/builder.h"
#include "exec/feedback.h"
#include "exec/stats.h"
#include "optimizers/executors.h"
#include "optimizers/oodb.h"
#include "optimizers/props.h"
#include "optimizers/relational.h"
#include "p2v/translator.h"
#include "volcano/batch.h"
#include "volcano/diag.h"
#include "volcano/engine.h"
#include "volcano/inspect.h"
#include "volcano/profile.h"
#include "workload/traffic.h"
#include "workload/workload.h"

namespace {

// --execute shrinks the generated base classes to executable sizes (the
// default workload cardinalities, up to 10k rows, make worst-case joins
// take minutes; these match the integration tests' enumerable scale).
constexpr int kExecMinCard = 16;
constexpr int kExecMaxCard = 256;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: prairie_opt [flags]\n"
      "\n"
      "workload selection:\n"
      "  --spec relational|oodb|FILE  rule specification (default oodb)\n"
      "  --query 1..8                 paper query to generate (default 1)\n"
      "  --joins N                    join count for join queries "
      "(default 2)\n"
      "  --seed S                     catalog/query seed (default 1)\n"
      "\n"
      "search control:\n"
      "  --expand-only                stop after logical expansion; report\n"
      "                               the search-space size only\n"
      "  --no-prune                   disable branch-and-bound pruning\n"
      "  --shape chain|star|clique    join-graph shape (default chain)\n"
      "  --search-jobs N              intra-query parallel search workers\n"
      "                               over one concurrent memo (default 1;\n"
      "                               0 = hardware default)\n"
      "  --search-budget-ms MS        anytime budget: stop expanding after\n"
      "                               MS milliseconds, return the best plan\n"
      "                               over the truncated space (default\n"
      "                               unlimited)\n"
      "  --max-groups N               anytime budget on allocated memo\n"
      "                               groups (default unlimited)\n"
      "\n"
      "batch mode (enabled by either flag):\n"
      "  --jobs N                     worker threads (0 = hardware "
      "default)\n"
      "  --batch K                    optimize K instances, seeds S..S+K-1\n"
      "\n"
      "plan cache:\n"
      "  --plan-cache[=ENTRIES]       reuse optimized plans by fingerprint\n"
      "                               (default 4096 entries); reports\n"
      "                               hit/miss/insert/evict/stale counts\n"
      "  --param-cache[=ENTRIES]      plan cache keyed on constant-stripped\n"
      "                               skeletons: queries differing only in\n"
      "                               literals share an entry; hits rebind\n"
      "                               the probe's constants (implies\n"
      "                               --plan-cache)\n"
      "  --traffic N                  optimize N requests of Zipf-skewed\n"
      "                               parameter-varying traffic (Q1..Q8\n"
      "                               skeleton pool, per-tenant streams);\n"
      "                               honors --jobs; reports hit rate and\n"
      "                               latency percentiles\n"
      "  --repeat R                   optimize the workload R times (cold\n"
      "                               first round, warm after)\n"
      "\n"
      "observability:\n"
      "  --trace FILE                 write Chrome trace_event JSON\n"
      "  --profile-rules              print per-rule attempt/latency table\n"
      "  --explain                    print winning-plan provenance\n"
      "  --metrics FILE               write the metrics registry after the\n"
      "                               run (Prometheus text; JSON when FILE\n"
      "                               ends in .json)\n"
      "  --dump-memo FILE.{dot,json}  dump the finished memo as Graphviz\n"
      "                               DOT or JSON (single-query mode)\n"
      "\n"
      "diagnostics:\n"
      "  --timeseries FILE[,MS]       windowed time-series metrics: one\n"
      "                               JSON-lines interval-delta record per\n"
      "                               MS-millisecond window (default 250;\n"
      "                               0 = every chunk); traffic/batch modes\n"
      "  --slow-ms MS                 flag queries slower than MS ms\n"
      "  --slow-p99 K                 flag queries slower than K x the\n"
      "                               running p99 latency (adaptive)\n"
      "  --qerror-limit Q             flag executed queries whose max\n"
      "                               operator Q-error exceeds Q\n"
      "  --slow-log FILE              JSON-lines record per flagged query\n"
      "  --diag-dir DIR               write a diagnostic bundle (manifest,\n"
      "                               trace slice, metrics delta,\n"
      "                               provenance) per trigger under DIR\n"
      "  --diag-detail full|coarse    flight-recorder granularity\n"
      "                               (default coarse)\n"
      "\n"
      "execution (single-query mode):\n"
      "  --execute                    run the winning plan on an in-memory\n"
      "                               database generated from the catalog\n"
      "                               (classes capped at %d rows); exits 2\n"
      "                               if an algorithm has no registered\n"
      "                               executor\n"
      "  --analyze[=FILE.json]        EXPLAIN ANALYZE (implies --execute):\n"
      "                               annotate each operator with estimated\n"
      "                               rows, actual rows, elapsed ns and\n"
      "                               Q-error; optionally export the stats\n"
      "                               tree as JSON\n"
      "\n"
      "  --version                    print build configuration and exit\n"
      "  --help                       show this help and exit\n",
      kExecMaxCard);
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

/// Writes the process-wide metrics registry to `path`; format picked by
/// extension (.json -> JSON snapshot, anything else -> Prometheus text).
int WriteMetricsFile(const std::string& path) {
  prairie::common::MetricsRegistry* reg =
      prairie::common::MetricsRegistry::Global();
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "prairie_opt: cannot open metrics file '%s'\n",
                 path.c_str());
    return 1;
  }
  out << (json ? reg->JsonSnapshot() : reg->PrometheusText());
  out.close();
  if (!out) {
    std::fprintf(stderr, "prairie_opt: error writing metrics file '%s'\n",
                 path.c_str());
    return 1;
  }
  std::printf("metrics: %zu series -> %s\n", reg->NumSeries(), path.c_str());
  return 0;
}

/// Joins argv into one provenance string for bundle manifests.
std::string RenderFlags(int argc, char** argv) {
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) out += " ";
    out += argv[i];
  }
  return out;
}

/// Wrap-around loss is silent at the ring; every trace export surfaces it.
void WarnDropped(size_t dropped, const char* what) {
  if (dropped > 0) {
    std::fprintf(stderr,
                 "prairie_opt: warning: %zu trace events lost to %s "
                 "ring wrap-around (exported stream is incomplete)\n",
                 dropped, what);
  }
}

/// Max per-operator Q-error over an ExecStats tree (0 = no estimates).
double MaxQError(const prairie::exec::OpStats* node) {
  if (node == nullptr) return 0;
  double q = node->QError();
  for (const prairie::exec::OpStats* c : node->children) {
    q = std::max(q, MaxQError(c));
  }
  return q;
}

/// Splits "FILE[,MS]" into path + scrape interval (default 250 ms). The
/// interval suffix must be all digits — a comma inside the path stays in
/// the path.
void ParseTimeSeriesSpec(const std::string& spec, std::string* path,
                         uint64_t* interval_ms) {
  *path = spec;
  *interval_ms = 250;
  const size_t comma = spec.rfind(',');
  if (comma == std::string::npos || comma + 1 >= spec.size()) return;
  const std::string tail = spec.substr(comma + 1);
  if (tail.find_first_not_of("0123456789") != std::string::npos) return;
  *path = spec.substr(0, comma);
  *interval_ms = static_cast<uint64_t>(std::atoll(tail.c_str()));
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec = "oodb";
  int query = 1;
  int joins = 2;
  uint64_t seed = 1;
  bool expand_only = false;
  int jobs = 0;
  int batch = 0;
  std::string trace_path;
  std::string metrics_path;
  std::string dump_memo_path;
  bool profile_rules = false;
  bool explain = false;
  bool execute = false;
  bool analyze = false;
  std::string analyze_path;
  bool plan_cache = false;
  size_t plan_cache_entries = 4096;
  bool param_cache = false;
  int traffic = 0;
  int repeat = 1;
  std::string shape = "chain";
  std::string timeseries_spec;
  double slow_ms = 0;
  double slow_p99 = 0;
  double qerror_limit = 0;
  std::string slow_log_path;
  std::string diag_dir;
  std::string diag_detail = "coarse";
  prairie::volcano::OptimizerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return Usage();
      spec = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Usage();
      query = std::atoi(v);
    } else if (arg == "--joins") {
      const char* v = next();
      if (v == nullptr) return Usage();
      joins = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--expand-only") {
      expand_only = true;
    } else if (arg == "--no-prune") {
      options.prune = false;
    } else if (arg == "--shape") {
      const char* v = next();
      if (v == nullptr) return Usage();
      shape = v;
    } else if (arg.rfind("--shape=", 0) == 0) {
      shape = arg.substr(std::strlen("--shape="));
    } else if (arg == "--search-jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.search_jobs = std::atoi(v);
    } else if (arg.rfind("--search-jobs=", 0) == 0) {
      options.search_jobs =
          std::atoi(arg.c_str() + std::strlen("--search-jobs="));
    } else if (arg == "--search-budget-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.search_budget_ms = std::atof(v);
    } else if (arg.rfind("--search-budget-ms=", 0) == 0) {
      options.search_budget_ms =
          std::atof(arg.c_str() + std::strlen("--search-budget-ms="));
    } else if (arg == "--max-groups") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.group_budget = static_cast<size_t>(std::atoll(v));
    } else if (arg.rfind("--max-groups=", 0) == 0) {
      options.group_budget = static_cast<size_t>(
          std::atoll(arg.c_str() + std::strlen("--max-groups=")));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      jobs = std::atoi(v);
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return Usage();
      batch = std::atoi(v);
    } else if (arg == "--plan-cache") {
      plan_cache = true;
    } else if (arg.rfind("--plan-cache=", 0) == 0) {
      plan_cache = true;
      const long long n = std::atoll(arg.c_str() + std::strlen("--plan-cache="));
      if (n <= 0) return Usage();
      plan_cache_entries = static_cast<size_t>(n);
    } else if (arg == "--param-cache") {
      plan_cache = true;
      param_cache = true;
    } else if (arg.rfind("--param-cache=", 0) == 0) {
      plan_cache = true;
      param_cache = true;
      const long long n =
          std::atoll(arg.c_str() + std::strlen("--param-cache="));
      if (n <= 0) return Usage();
      plan_cache_entries = static_cast<size_t>(n);
    } else if (arg == "--traffic") {
      const char* v = next();
      if (v == nullptr) return Usage();
      traffic = std::atoi(v);
    } else if (arg.rfind("--traffic=", 0) == 0) {
      traffic = std::atoi(arg.c_str() + std::strlen("--traffic="));
    } else if (arg == "--repeat") {
      const char* v = next();
      if (v == nullptr) return Usage();
      repeat = std::atoi(v);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.c_str() + std::strlen("--repeat="));
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_path = v;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
      if (trace_path.empty()) return Usage();
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v == nullptr) return Usage();
      metrics_path = v;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics="));
      if (metrics_path.empty()) return Usage();
    } else if (arg == "--dump-memo") {
      const char* v = next();
      if (v == nullptr) return Usage();
      dump_memo_path = v;
    } else if (arg.rfind("--dump-memo=", 0) == 0) {
      dump_memo_path = arg.substr(std::strlen("--dump-memo="));
      if (dump_memo_path.empty()) return Usage();
    } else if (arg == "--profile-rules") {
      profile_rules = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--execute") {
      execute = true;
    } else if (arg == "--analyze") {
      execute = true;
      analyze = true;
    } else if (arg.rfind("--analyze=", 0) == 0) {
      execute = true;
      analyze = true;
      analyze_path = arg.substr(std::strlen("--analyze="));
      if (analyze_path.empty()) return Usage();
    } else if (arg == "--timeseries") {
      const char* v = next();
      if (v == nullptr) return Usage();
      timeseries_spec = v;
    } else if (arg.rfind("--timeseries=", 0) == 0) {
      timeseries_spec = arg.substr(std::strlen("--timeseries="));
      if (timeseries_spec.empty()) return Usage();
    } else if (arg == "--slow-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      slow_ms = std::atof(v);
    } else if (arg.rfind("--slow-ms=", 0) == 0) {
      slow_ms = std::atof(arg.c_str() + std::strlen("--slow-ms="));
    } else if (arg == "--slow-p99") {
      const char* v = next();
      if (v == nullptr) return Usage();
      slow_p99 = std::atof(v);
    } else if (arg.rfind("--slow-p99=", 0) == 0) {
      slow_p99 = std::atof(arg.c_str() + std::strlen("--slow-p99="));
    } else if (arg == "--qerror-limit") {
      const char* v = next();
      if (v == nullptr) return Usage();
      qerror_limit = std::atof(v);
    } else if (arg.rfind("--qerror-limit=", 0) == 0) {
      qerror_limit = std::atof(arg.c_str() + std::strlen("--qerror-limit="));
    } else if (arg == "--slow-log") {
      const char* v = next();
      if (v == nullptr) return Usage();
      slow_log_path = v;
    } else if (arg.rfind("--slow-log=", 0) == 0) {
      slow_log_path = arg.substr(std::strlen("--slow-log="));
      if (slow_log_path.empty()) return Usage();
    } else if (arg == "--diag-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      diag_dir = v;
    } else if (arg.rfind("--diag-dir=", 0) == 0) {
      diag_dir = arg.substr(std::strlen("--diag-dir="));
      if (diag_dir.empty()) return Usage();
    } else if (arg == "--diag-detail") {
      const char* v = next();
      if (v == nullptr) return Usage();
      diag_detail = v;
    } else if (arg.rfind("--diag-detail=", 0) == 0) {
      diag_detail = arg.substr(std::strlen("--diag-detail="));
    } else if (arg == "--version") {
      std::printf("prairie_opt (%s)\n",
                  prairie::common::BuildConfigText().c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "prairie_opt: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (query < 1 || query > 8 || joins < 1 || batch < 0 || repeat < 1 ||
      traffic < 0 || slow_ms < 0 || slow_p99 < 0 || qerror_limit < 0) {
    return Usage();
  }
  if (diag_detail != "full" && diag_detail != "coarse") return Usage();
  if (execute && (traffic > 0 || jobs != 0 || batch > 1 || expand_only)) {
    std::fprintf(stderr,
                 "prairie_opt: --execute/--analyze apply to single-query "
                 "full-optimization mode; ignoring\n");
    execute = false;
    analyze = false;
  }
  prairie::workload::JoinShape join_shape =
      prairie::workload::JoinShape::kChain;
  if (shape == "star") {
    join_shape = prairie::workload::JoinShape::kStar;
  } else if (shape == "clique") {
    join_shape = prairie::workload::JoinShape::kClique;
  } else if (shape != "chain") {
    return Usage();
  }

  std::string text;
  if (spec == "relational") {
    text = prairie::opt::RelationalSpecText();
    if (query > 2) {
      std::fprintf(stderr,
                   "prairie_opt: the relational algebra supports only "
                   "Q1/Q2 (E1)\n");
      return 1;
    }
  } else if (spec == "oodb") {
    text = prairie::opt::OodbSpecText();
  } else {
    std::ifstream in(spec);
    if (!in) {
      std::fprintf(stderr, "prairie_opt: cannot read '%s'\n", spec.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  auto rules = prairie::dsl::ParseRuleSet(text, prairie::opt::StandardHelpers());
  if (!rules.ok()) {
    std::fprintf(stderr, "prairie_opt: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }
  auto volcano_rules = prairie::p2v::Translate(*rules, nullptr);
  if (!volcano_rules.ok()) {
    std::fprintf(stderr, "prairie_opt: %s\n",
                 volcano_rules.status().ToString().c_str());
    return 1;
  }

  options.param_cache = param_cache;

  // The metrics bundle registers every series (per-rule histograms need the
  // rule names) once, up front; all modes then share it — batch workers
  // flush into the same sharded counters without contention. Traffic mode
  // always wants it: the latency percentiles come out of its histograms.
  const bool diag_requested = slow_ms > 0 || slow_p99 > 0 ||
                              qerror_limit > 0 || !slow_log_path.empty() ||
                              !diag_dir.empty();
  prairie::volcano::VolcanoMetrics metrics_bundle;
  if (!metrics_path.empty() || traffic > 0 || diag_requested) {
    metrics_bundle = prairie::volcano::VolcanoMetrics::ForRuleSet(
        prairie::common::MetricsRegistry::Global(), **volcano_rules);
    options.metrics = &metrics_bundle;
  }

  // Diagnostics (DESIGN.md §7.4): one service shared by whichever mode
  // runs. Check() is evaluated after every query; the slow log and bundle
  // directory are only touched on a firing trigger.
  const prairie::common::TraceDetail flight_detail =
      diag_detail == "full" ? prairie::common::TraceDetail::kFull
                            : prairie::common::TraceDetail::kCoarse;
  std::ofstream slow_log_stream;
  std::unique_ptr<prairie::volcano::DiagService> diag;
  if (diag_requested) {
    if (!slow_log_path.empty()) {
      slow_log_stream.open(slow_log_path, std::ios::out | std::ios::trunc);
      if (!slow_log_stream) {
        std::fprintf(stderr, "prairie_opt: cannot open slow log '%s'\n",
                     slow_log_path.c_str());
        return 1;
      }
    }
    prairie::volcano::DiagOptions dopt;
    dopt.slow_ms = slow_ms;
    dopt.adaptive_k = slow_p99;
    dopt.latency_hist = metrics_bundle.query_latency_ns;
    dopt.qerror_limit = qerror_limit;
    dopt.cache_storm_threshold = plan_cache ? 64 : 0;
    dopt.diag_dir = diag_dir;
    dopt.slow_log = slow_log_stream.is_open() ? &slow_log_stream : nullptr;
    dopt.registry = prairie::common::MetricsRegistry::Global();
    dopt.rules = volcano_rules->get();
    dopt.flags = RenderFlags(argc, argv);
    dopt.seed = seed;
    diag = std::make_unique<prairie::volcano::DiagService>(dopt);
  }

  // Windowed time-series metrics: armed here (after the bundle registered
  // its series) so the baseline sample covers them; scraped between work
  // chunks by the traffic/batch loops below.
  std::ofstream ts_stream;
  std::unique_ptr<prairie::common::TimeSeriesWriter> timeseries;
  std::string ts_path;
  if (!timeseries_spec.empty()) {
    uint64_t ts_interval_ms = 250;
    ParseTimeSeriesSpec(timeseries_spec, &ts_path, &ts_interval_ms);
    ts_stream.open(ts_path, std::ios::out | std::ios::trunc);
    if (!ts_stream) {
      std::fprintf(stderr, "prairie_opt: cannot open timeseries file '%s'\n",
                   ts_path.c_str());
      return 1;
    }
    prairie::common::TimeSeriesOptions tso;
    tso.interval_ms = ts_interval_ms;
    timeseries = std::make_unique<prairie::common::TimeSeriesWriter>(
        prairie::common::MetricsRegistry::Global(), &ts_stream, tso);
  }

  if (traffic > 0) {
    // Traffic mode: N parameter-varying requests over a Zipf-skewed
    // skeleton pool, optimized through one BatchOptimizer (serial unless
    // --jobs). The interesting outputs are the cache counters and the
    // optimize-latency percentiles, not the individual plans.
    const auto& algebra = *(*volcano_rules)->algebra;
    prairie::workload::TrafficOptions topt;
    topt.num_joins = joins;
    topt.seed = seed;
    auto gen = prairie::workload::TrafficGenerator::Make(algebra, topt);
    if (!gen.ok()) {
      std::fprintf(stderr, "prairie_opt: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    std::vector<prairie::workload::TrafficRequest> requests;
    requests.reserve(static_cast<size_t>(traffic));
    for (int i = 0; i < traffic; ++i) requests.push_back(gen->Next());
    std::vector<prairie::volcano::BatchQuery> queries;
    queries.reserve(requests.size());
    for (const auto& r : requests) {
      queries.push_back(prairie::volcano::BatchQuery{r.query.get(), r.catalog});
    }
    prairie::volcano::BatchOptions batch_options;
    batch_options.jobs = jobs == 0 ? 1 : jobs;
    batch_options.optimizer = options;
    if (plan_cache) batch_options.plan_cache_entries = plan_cache_entries;
    if (diag != nullptr) {
      // Arm the per-worker flight recorders; under traffic they run at
      // the (coarse by default) diagnostics detail.
      batch_options.diag = diag.get();
      batch_options.optimizer.trace_detail = flight_detail;
    }
    prairie::volcano::BatchOptimizer batcher(volcano_rules->get(),
                                             batch_options);
    // With --timeseries the request stream is fed in ~8 chunks so the
    // scraper observes the run in flight; without it, one call.
    const size_t chunk =
        timeseries != nullptr
            ? std::max<size_t>(1, (queries.size() + 7) / 8)
            : queries.size();
    std::vector<prairie::volcano::BatchResult> results;
    results.reserve(queries.size());
    prairie::common::Stopwatch sw;
    for (size_t off = 0; off < queries.size(); off += chunk) {
      const size_t end = std::min(off + chunk, queries.size());
      std::vector<prairie::volcano::BatchQuery> part(
          queries.begin() + static_cast<ptrdiff_t>(off),
          queries.begin() + static_cast<ptrdiff_t>(end));
      std::vector<prairie::volcano::BatchResult> part_results =
          batcher.OptimizeAll(part);
      results.insert(results.end(),
                     std::make_move_iterator(part_results.begin()),
                     std::make_move_iterator(part_results.end()));
      if (timeseries != nullptr) timeseries->MaybeScrape();
    }
    const double wall = sw.ElapsedSeconds();
    if (timeseries != nullptr) timeseries->MaybeScrape(/*force=*/true);
    int failures = 0;
    size_t cached = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      if (!r.plan.ok()) {
        std::printf("request %zu (skeleton %d): ERROR %s\n", i,
                    requests[i].skeleton, r.plan.status().ToString().c_str());
        ++failures;
        continue;
      }
      if (r.stats.plan_from_cache) ++cached;
    }
    std::printf(
        "traffic: %zu requests over %d skeletons on %d worker(s) in %.2f ms "
        "(%.1f queries/s)\n",
        results.size(), gen->num_skeletons(), batcher.jobs(), wall * 1e3,
        static_cast<double>(results.size()) / wall);
    std::printf("         %zu served from cache (%.1f%% hit rate)\n", cached,
                results.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(cached) /
                          static_cast<double>(results.size()));
    const prairie::common::HistogramSnapshot lat =
        metrics_bundle.query_latency_ns->Snapshot();
    std::printf("latency: p50 %.1f us, p90 %.1f us, p99 %.1f us\n",
                lat.Percentile(50) / 1e3, lat.Percentile(90) / 1e3,
                lat.Percentile(99) / 1e3);
    if (const prairie::volcano::PlanCache* cache = batcher.plan_cache()) {
      const prairie::volcano::PlanCacheStats cs = cache->stats();
      std::printf(
          "plan cache: %llu hits (%llu rebound), %llu misses, %llu inserts "
          "(%llu skeleton, %llu unrebindable), %llu guard rejects,\n"
          "            %llu evictions, %llu stale drops (%zu live entries, "
          "%zu bytes)\n",
          static_cast<unsigned long long>(cs.hits),
          static_cast<unsigned long long>(cs.param_hits),
          static_cast<unsigned long long>(cs.misses),
          static_cast<unsigned long long>(cs.inserts),
          static_cast<unsigned long long>(cs.param_inserts),
          static_cast<unsigned long long>(cs.unrebindable_inserts),
          static_cast<unsigned long long>(cs.sensitivity_rejects),
          static_cast<unsigned long long>(cs.evictions),
          static_cast<unsigned long long>(cs.stale_drops), cache->size(),
          cache->bytes());
    }
    if (timeseries != nullptr) {
      std::printf("timeseries: %llu interval records -> %s\n",
                  static_cast<unsigned long long>(timeseries->seq()),
                  ts_path.c_str());
    }
    if (diag != nullptr) {
      std::printf("diag: %zu queries flagged, %zu bundles written%s%s\n",
                  diag->reports(), diag->bundles_written(),
                  diag_dir.empty() ? "" : " -> ", diag_dir.c_str());
    }
    if (!metrics_path.empty() && WriteMetricsFile(metrics_path) != 0) {
      return 1;
    }
    return failures == 0 ? 0 : 1;
  }

  if (jobs != 0 || batch > 1) {
    // Batch mode: K instances of the query under consecutive seeds,
    // optimized concurrently on the worker pool.
    const int count = batch > 1 ? batch : 8;
    const auto& algebra = *(*volcano_rules)->algebra;
    std::vector<prairie::workload::Workload> workloads;
    workloads.reserve(static_cast<size_t>(count));
    for (int k = 0; k < count; ++k) {
      prairie::workload::QuerySpec qspec = prairie::workload::PaperQuery(
          query, joins, seed + static_cast<uint64_t>(k));
      qspec.shape = join_shape;
      auto w = prairie::workload::MakeWorkload(algebra, qspec);
      if (!w.ok()) {
        std::fprintf(stderr, "prairie_opt: seed %llu: %s\n",
                     static_cast<unsigned long long>(qspec.seed),
                     w.status().ToString().c_str());
        return 1;
      }
      workloads.push_back(std::move(*w));
    }
    std::vector<prairie::volcano::BatchQuery> queries;
    queries.reserve(workloads.size());
    for (const auto& w : workloads) {
      queries.push_back(prairie::volcano::BatchQuery{w.query.get(), &w.catalog});
    }
    prairie::volcano::BatchOptions batch_options;
    batch_options.jobs = jobs;
    batch_options.optimizer = options;
    if (plan_cache) batch_options.plan_cache_entries = plan_cache_entries;
    if (!trace_path.empty() || profile_rules) {
      batch_options.trace_capacity =
          prairie::common::RingBufferSink::kDefaultCapacity;
    }
    if (diag != nullptr) {
      batch_options.diag = diag.get();
      // A full batch trace (--trace/--profile-rules) overrides the coarse
      // flight-recorder detail: one sink serves both consumers.
      if (batch_options.trace_capacity == 0) {
        batch_options.optimizer.trace_detail = flight_detail;
      }
    }
    prairie::volcano::BatchOptimizer batcher(volcano_rules->get(),
                                             batch_options);
    // With --repeat the same batch runs R times; round 1 is cold, later
    // rounds are served (mostly) from the warm cache.
    std::vector<prairie::volcano::BatchResult> results;
    prairie::common::Stopwatch sw;
    double wall = 0;
    for (int round = 0; round < repeat; ++round) {
      prairie::common::Stopwatch round_sw;
      results = batcher.OptimizeAll(queries);
      const double round_wall = round_sw.ElapsedSeconds();
      if (repeat > 1) {
        std::printf("round %d/%d: %.2f ms (%.1f queries/s)\n", round + 1,
                    repeat, round_wall * 1e3,
                    static_cast<double>(results.size()) / round_wall);
      }
      if (timeseries != nullptr) timeseries->MaybeScrape();
    }
    wall = sw.ElapsedSeconds();
    if (timeseries != nullptr) timeseries->MaybeScrape(/*force=*/true);
    int failures = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      if (!r.plan.ok()) {
        std::printf("Q%d seed %llu: ERROR %s\n", query,
                    static_cast<unsigned long long>(seed + i),
                    r.plan.status().ToString().c_str());
        ++failures;
        continue;
      }
      std::printf("Q%d seed %llu: cost %.2f  %s\n", query,
                  static_cast<unsigned long long>(seed + i), r.plan->cost,
                  r.plan->root->ToString(algebra).c_str());
    }
    const auto* store = batcher.shared_store();
    const size_t total_queries = results.size() * static_cast<size_t>(repeat);
    std::printf(
        "\nbatch: %zu queries on %d worker(s) in %.2f ms (%.1f queries/s)\n",
        total_queries, batcher.jobs(), wall * 1e3,
        static_cast<double>(total_queries) / wall);
    if (store != nullptr) {
      std::printf("shared store: %zu descriptors, %.1f%% intern hit rate\n",
                  store->size(), 100.0 * store->HitRate());
    }
    if (const prairie::volcano::PlanCache* cache = batcher.plan_cache()) {
      const prairie::volcano::PlanCacheStats cs = cache->stats();
      std::printf(
          "plan cache: %llu hits, %llu misses, %llu inserts, %llu evictions, "
          "%llu stale drops (%zu live entries, %zu bytes)\n",
          static_cast<unsigned long long>(cs.hits),
          static_cast<unsigned long long>(cs.misses),
          static_cast<unsigned long long>(cs.inserts),
          static_cast<unsigned long long>(cs.evictions),
          static_cast<unsigned long long>(cs.stale_drops), cache->size(),
          cache->bytes());
      if (param_cache) {
        std::printf(
            "param cache: %llu rebound hits, %llu skeleton inserts, %llu "
            "unrebindable inserts, %llu guard rejects\n",
            static_cast<unsigned long long>(cs.param_hits),
            static_cast<unsigned long long>(cs.param_inserts),
            static_cast<unsigned long long>(cs.unrebindable_inserts),
            static_cast<unsigned long long>(cs.sensitivity_rejects));
      }
    }
    if (profile_rules) {
      prairie::volcano::RuleProfile profile = prairie::volcano::BuildRuleProfile(
          batcher.trace_events(), **volcano_rules, batcher.trace_dropped());
      std::printf("\nrule profile (all workers):\n%s",
                  profile.ToTable().c_str());
    }
    if (!trace_path.empty()) {
      WarnDropped(batcher.trace_dropped(), "per-worker");
      auto st = prairie::volcano::WriteChromeTrace(
          trace_path, batcher.trace_events(), **volcano_rules,
          batcher.trace_dropped());
      if (!st.ok()) {
        std::fprintf(stderr, "prairie_opt: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("trace: %zu events -> %s\n", batcher.trace_events().size(),
                  trace_path.c_str());
    }
    if (explain) {
      std::fprintf(stderr,
                   "prairie_opt: --explain applies to single-query mode "
                   "(batch optimizers are discarded per query)\n");
    }
    if (!dump_memo_path.empty()) {
      std::fprintf(stderr,
                   "prairie_opt: --dump-memo applies to single-query mode "
                   "(batch memos are discarded per query)\n");
    }
    if (timeseries != nullptr) {
      std::printf("timeseries: %llu interval records -> %s\n",
                  static_cast<unsigned long long>(timeseries->seq()),
                  ts_path.c_str());
    }
    if (diag != nullptr) {
      std::printf("diag: %zu queries flagged, %zu bundles written%s%s\n",
                  diag->reports(), diag->bundles_written(),
                  diag_dir.empty() ? "" : " -> ", diag_dir.c_str());
    }
    if (!metrics_path.empty() && WriteMetricsFile(metrics_path) != 0) {
      return 1;
    }
    return failures == 0 ? 0 : 1;
  }

  prairie::workload::QuerySpec qspec =
      prairie::workload::PaperQuery(query, joins, seed);
  qspec.shape = join_shape;
  if (execute) {
    qspec.min_card = kExecMinCard;
    qspec.max_card = kExecMaxCard;
  }
  auto w = prairie::workload::MakeWorkload(*(*volcano_rules)->algebra, qspec);
  if (!w.ok()) {
    std::fprintf(stderr, "prairie_opt: %s\n", w.status().ToString().c_str());
    return 1;
  }

  const auto& algebra = *(*volcano_rules)->algebra;
  std::printf("catalog:\n%s\n\n", w->catalog.ToString().c_str());
  std::printf("query Q%d (%d joins, seed %llu):\n  %s\n\n", query, joins,
              static_cast<unsigned long long>(seed),
              w->query->ToString(algebra).c_str());

  std::unique_ptr<prairie::common::RingBufferSink> sink;
  if (!trace_path.empty() || profile_rules || diag != nullptr) {
    sink = std::make_unique<prairie::common::RingBufferSink>();
    options.trace = sink.get();
    // When only the diagnostics layer wants the sink it runs as a coarse
    // flight recorder; an explicit --trace/--profile-rules keeps the full
    // stream.
    if (trace_path.empty() && !profile_rules) {
      options.trace_detail = flight_detail;
    }
  }
  // The cache outlives every per-round optimizer; its keys intern through
  // one store that all rounds share.
  std::unique_ptr<prairie::algebra::DescriptorStore> cache_store;
  std::unique_ptr<prairie::volcano::PlanCache> cache;
  if (plan_cache) {
    // A serial shared store would degrade --search-jobs to one worker (a
    // concurrent memo interns from several threads), so the cache store
    // follows the search mode.
    cache_store = std::make_unique<prairie::algebra::DescriptorStore>(
        &(*volcano_rules)->algebra->properties(),
        options.search_jobs != 1 ? prairie::algebra::StoreMode::kConcurrent
                                 : prairie::algebra::StoreMode::kSerial);
    prairie::volcano::PlanCacheOptions copt;
    copt.max_entries = plan_cache_entries;
    cache = std::make_unique<prairie::volcano::PlanCache>(cache_store.get(),
                                                          copt);
    options.plan_cache = cache.get();
  }
  // --repeat: rounds 1..R-1 run here (round 1 cold; with --plan-cache the
  // rest warm); the final round below prints the plan and stats.
  for (int round = 1; !expand_only && round < repeat; ++round) {
    prairie::common::Stopwatch round_sw;
    prairie::volcano::Optimizer warm(volcano_rules->get(), &w->catalog,
                                     options, cache_store.get());
    auto p = warm.Optimize(*w->query);
    if (!p.ok()) {
      std::fprintf(stderr, "prairie_opt: %s\n", p.status().ToString().c_str());
      return 1;
    }
    std::printf("round %d/%d: %.3f ms%s\n", round, repeat,
                round_sw.ElapsedSeconds() * 1e3,
                warm.stats().plan_from_cache ? " (cached)" : "");
  }
  prairie::volcano::Optimizer optimizer(volcano_rules->get(), &w->catalog,
                                        options, cache_store.get());
  auto emit_trace_outputs = [&]() -> int {
    if (sink == nullptr) return 0;
    const std::vector<prairie::common::TraceEvent> events = sink->Snapshot();
    if (profile_rules) {
      prairie::volcano::RuleProfile profile = prairie::volcano::BuildRuleProfile(
          events, **volcano_rules, sink->dropped());
      std::printf("\nrule profile:\n%s", profile.ToTable().c_str());
    }
    if (!trace_path.empty()) {
      WarnDropped(sink->dropped(), "trace");
      auto st = prairie::volcano::WriteChromeTrace(
          trace_path, events, **volcano_rules, sink->dropped());
      if (!st.ok()) {
        std::fprintf(stderr, "prairie_opt: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("trace: %zu events -> %s\n", events.size(),
                  trace_path.c_str());
    }
    return 0;
  };
  // Post-run observability artifacts: the memo dump (needs the finished
  // memo, still owned by the optimizer) and the metrics file.
  auto emit_dumps = [&]() -> int {
    if (!dump_memo_path.empty()) {
      const prairie::volcano::Memo& memo = optimizer.memo();
      auto st = prairie::volcano::WriteMemoDump(dump_memo_path, memo,
                                                **volcano_rules);
      if (!st.ok()) {
        std::fprintf(stderr, "prairie_opt: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("memo: %zu groups, %zu expressions -> %s\n",
                  memo.NumGroups(), memo.NumExprs(), dump_memo_path.c_str());
    }
    if (!metrics_path.empty() && WriteMetricsFile(metrics_path) != 0) {
      return 1;
    }
    return 0;
  };
  if (expand_only) {
    auto groups = optimizer.ExpandOnly(*w->query);
    if (!groups.ok()) {
      std::fprintf(stderr, "prairie_opt: %s\n",
                   groups.status().ToString().c_str());
      return 1;
    }
    std::printf("logical search space: %zu equivalence classes, %zu "
                "expressions\n",
                *groups, optimizer.stats().mexprs);
    if (int rc = emit_trace_outputs(); rc != 0) return rc;
    return emit_dumps();
  }
  prairie::common::Stopwatch opt_sw;
  auto plan = optimizer.Optimize(*w->query);
  const double optimize_ms = opt_sw.ElapsedSeconds() * 1e3;
  if (!plan.ok()) {
    std::fprintf(stderr, "prairie_opt: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan (cost %.2f):\n%s\n", plan->cost,
              plan->root->TreeString(algebra).c_str());
  const auto& stats = optimizer.stats();
  std::printf(
      "stats: %zu equivalence classes, %zu logical expressions,\n"
      "       %zu trans-rule attempts, %zu trans-rule firings,\n"
      "       %zu impl-rule attempts, %zu plans costed, %zu enforcer "
      "attempts,\n"
      "       %zu interned descriptors (%.1f%% intern hit rate)\n",
      stats.groups, stats.mexprs, stats.trans_attempts, stats.trans_fired,
      stats.impl_attempts, stats.plans_costed, stats.enforcer_attempts,
      stats.desc_interned, 100.0 * stats.InternHitRate());
  if (stats.plan_from_cache) {
    std::printf("(plan served from the cache; the search did not run)\n");
  }
  if (stats.budget_exhausted) {
    std::printf(
        "(anytime budget exhausted: best plan over the truncated search "
        "space)\n");
  }
  if (cache != nullptr) {
    const prairie::volcano::PlanCacheStats cs = cache->stats();
    std::printf(
        "plan cache: %llu hits, %llu misses, %llu inserts, %llu evictions, "
        "%llu stale drops (%zu live entries, %zu bytes)\n",
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.inserts),
        static_cast<unsigned long long>(cs.evictions),
        static_cast<unsigned long long>(cs.stale_drops), cache->size(),
        cache->bytes());
    if (param_cache) {
      std::printf(
          "param cache: %llu rebound hits, %llu skeleton inserts, %llu "
          "unrebindable inserts, %llu guard rejects\n",
          static_cast<unsigned long long>(cs.param_hits),
          static_cast<unsigned long long>(cs.param_inserts),
          static_cast<unsigned long long>(cs.unrebindable_inserts),
          static_cast<unsigned long long>(cs.sensitivity_rejects));
    }
  }
  if (explain) {
    std::printf("\nprovenance (winner -> rule -> source expression):\n%s",
                optimizer.ExplainWinner().c_str());
  }
  prairie::exec::ExecStats exec_stats;
  prairie::exec::CardinalityFeedback feedback;
  bool executed = false;
  if (execute) {
    auto db = prairie::workload::MakeDatabase(w->catalog, seed);
    if (!db.ok()) {
      std::fprintf(stderr, "prairie_opt: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }
    prairie::exec::ExecutorRegistry exec_registry;
    if (auto st = prairie::opt::RegisterStandardExecutors(&exec_registry);
        !st.ok()) {
      std::fprintf(stderr, "prairie_opt: %s\n", st.ToString().c_str());
      return 1;
    }
    prairie::algebra::ExprPtr plan_expr = plan->root->ToExpr(algebra);
    auto iter = exec_registry.Build(*plan_expr, algebra, *db, &exec_stats);
    if (!iter.ok()) {
      std::fprintf(stderr, "prairie_opt: %s\n",
                   iter.status().ToString().c_str());
      // A plan whose algorithm has no executor is a usage-level error (the
      // spec defines algorithms the binary cannot run), not a crash.
      return iter.status().code() == prairie::common::StatusCode::kNotFound
                 ? 2
                 : 1;
    }
    prairie::common::Stopwatch exec_sw;
    auto rows = prairie::exec::CollectAll(iter->get());
    if (!rows.ok()) {
      std::fprintf(stderr, "prairie_opt: %s\n",
                   rows.status().ToString().c_str());
      return 1;
    }
    std::printf("\nexecuted: %zu result rows in %.3f ms\n", rows->size(),
                exec_sw.ElapsedSeconds() * 1e3);
    if (analyze) {
      std::printf("\nexplain analyze (est vs actual rows, q = Q-error):\n%s",
                  exec_stats.ToText().c_str());
      if (!analyze_path.empty()) {
        std::ofstream out(analyze_path, std::ios::out | std::ios::trunc);
        if (out) out << exec_stats.ToJson() << "\n";
        if (!out) {
          std::fprintf(stderr,
                       "prairie_opt: cannot write analyze file '%s'\n",
                       analyze_path.c_str());
          return 1;
        }
        out.close();
        std::printf("analyze: stats -> %s\n", analyze_path.c_str());
      }
    }
    // Record (sub-plan fingerprint) -> actual rows: the feedback surface
    // the calibrated-cost-model roadmap item consumes.
    prairie::algebra::DescriptorStore fp_store(&algebra.properties());
    auto fb_st = prairie::exec::RecordPlanFeedback(*plan_expr, exec_stats,
                                                   &fp_store, &feedback);
    if (!fb_st.ok()) {
      std::fprintf(stderr, "prairie_opt: %s\n", fb_st.ToString().c_str());
      return 1;
    }
    if (exec_stats.root() != nullptr) {
      std::printf("cardinality feedback: %zu sub-plan fingerprints recorded\n",
                  feedback.size());
    }
    if (!metrics_path.empty()) {
      prairie::exec::ExecMetrics exec_metrics =
          prairie::exec::ExecMetrics::ForRegistry(
              prairie::common::MetricsRegistry::Global());
      exec_metrics.FlushExecStats(exec_stats);
    }
    // Execution spans join the search trace: one timeline, optimize then
    // execute.
    if (sink != nullptr) exec_stats.EmitTrace(sink.get());
    executed = true;
  }
  if (diag != nullptr) {
    const double max_qerror = executed ? MaxQError(exec_stats.root()) : 0;
    const prairie::volcano::DiagTrigger trig =
        diag->Check(optimize_ms, stats, max_qerror);
    if (trig != prairie::volcano::DiagTrigger::kNone) {
      prairie::volcano::QueryDiag qd;
      qd.query_text = w->query->TreeString(algebra);
      qd.latency_ms = optimize_ms;
      qd.stats = &stats;
      qd.max_qerror = max_qerror;
      if (sink != nullptr) {
        qd.trace_slice = sink->Snapshot();
        qd.trace_dropped = sink->dropped();
      }
      if (!stats.plan_from_cache) {
        qd.provenance = optimizer.ExplainWinner();
        qd.memo_dot =
            prairie::volcano::MemoToDot(optimizer.memo(), **volcano_rules);
      }
      if (executed && exec_stats.root() != nullptr) {
        qd.analyze_text = exec_stats.ToText();
        qd.analyze_json = exec_stats.ToJson();
        qd.feedback_json = feedback.ToJson();
        qd.est_rows = exec_stats.root()->est_rows;
        qd.actual_rows = static_cast<double>(exec_stats.root()->rows);
      }
      const std::string bundle = diag->Report(trig, qd);
      std::printf("diag: trigger %s%s%s\n",
                  prairie::volcano::DiagTriggerName(trig),
                  bundle.empty() ? "" : " -> ", bundle.c_str());
    }
  }
  if (int rc = emit_trace_outputs(); rc != 0) return rc;
  return emit_dumps();
}

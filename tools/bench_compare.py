#!/usr/bin/env python3
"""Compare BENCH_*.json results against committed baseline snapshots.

Every bench binary writes one JSON object per line to BENCH_<name>.json
(fields: bench, family, wall_us, groups, mexprs, intern_hit_rate). This
tool diffs fresh results against the snapshots committed under
bench/baselines/ and exits non-zero when any family's wall time regressed
by more than --tolerance. Tolerances accept either form: values <= 1 are
fractions (0.10 means +10%), values > 1 are percentages (10 also means
+10%).

Usage:
    tools/bench_compare.py [--baseline-dir bench/baselines]
                           [--tolerance 0.10] [--update]
                           [--tolerance-for BENCH=PCT ...]
                           build/BENCH_table5.json [more...]

--tolerance-for overrides the gate for one bench (the record's "bench"
field), and may repeat. This exists for benches whose families span very
different magnitudes: BENCH_plancache mixes multi-second cold searches
with microsecond warm probes, and the warm side needs a far looser
relative gate than the default — e.g.

    --tolerance 0.10 --tolerance-for plancache=300

gates most benches at +10% but allows plancache families 4x.

--update refreshes the baseline snapshots from the given results instead
of comparing (run on a quiet machine, then commit the changed files).

Exit codes: 0 all families within tolerance; 1 at least one wall-time
regression beyond --tolerance; 2 no regression, but some measured family
has no baseline entry (the snapshot is stale — rerun with --update and
commit it). Families present only in the baseline are reported but never
fail the check: CI runs some benches in a reduced configuration.
"""

import argparse
import json
import os
import shutil
import sys


def load_records(path):
    """Returns {(bench, family): wall_us}; the last record of a key wins."""
    records = {}
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{line_no}: bad JSON: {e}")
            try:
                records[(obj["bench"], obj["family"])] = float(obj["wall_us"])
            except KeyError as e:
                raise SystemExit(f"{path}:{line_no}: missing field {e}")
    return records


def fmt_us(us):
    return f"{us / 1000.0:.2f}ms" if us >= 1000 else f"{us:.1f}us"


def as_fraction(value):
    """Tolerance in either form: <= 1 is a fraction, > 1 a percentage."""
    return value / 100.0 if value > 1.0 else value


def parse_overrides(pairs):
    """Parses repeated BENCH=PCT args into {bench: fraction}."""
    overrides = {}
    for pair in pairs:
        bench, sep, pct = pair.partition("=")
        if not sep or not bench:
            raise SystemExit(f"--tolerance-for: expected BENCH=PCT, "
                             f"got '{pair}'")
        try:
            overrides[bench] = as_fraction(float(pct))
        except ValueError:
            raise SystemExit(f"--tolerance-for: bad number in '{pair}'")
    return overrides


def main():
    parser = argparse.ArgumentParser(
        description="Diff bench JSON results against committed baselines.")
    parser.add_argument("results", nargs="+",
                        help="fresh BENCH_<name>.json files to check")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory of committed snapshots")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed wall-time regression; <= 1 is a "
                             "fraction, > 1 a percentage "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--tolerance-for", action="append", default=[],
                        metavar="BENCH=PCT",
                        help="per-bench tolerance override (repeatable); "
                             "same fraction-or-percent form")
    parser.add_argument("--update", action="store_true",
                        help="copy results into the baseline dir instead "
                             "of comparing")
    args = parser.parse_args()
    default_tolerance = as_fraction(args.tolerance)
    overrides = parse_overrides(args.tolerance_for)

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.results:
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"baseline updated: {dest}")
        return 0

    regressions = []
    missing = []
    for path in args.results:
        baseline_path = os.path.join(args.baseline_dir,
                                     os.path.basename(path))
        if not os.path.exists(baseline_path):
            missing.append(os.path.basename(path))
            print(f"MISS  {os.path.basename(path)}: missing baseline file "
                  f"(expected {baseline_path}; run with --update)")
            continue
        current = load_records(path)
        baseline = load_records(baseline_path)

        for key in sorted(baseline.keys() - current.keys()):
            print(f"NOTE  {key[0]}/{key[1]}: in baseline only")
        for key in sorted(current.keys() - baseline.keys()):
            missing.append(f"{key[0]}/{key[1]}")
            print(f"MISS  {key[0]}/{key[1]}: missing baseline entry "
                  f"(run with --update)")

        for key in sorted(current.keys() & baseline.keys()):
            cur, base = current[key], baseline[key]
            if base <= 0:
                continue
            tolerance = overrides.get(key[0], default_tolerance)
            delta = cur / base - 1.0
            tag = f"{key[0]}/{key[1]}"
            line = (f"{tag}: {fmt_us(base)} -> {fmt_us(cur)} "
                    f"({delta:+.1%}, gate +{tolerance:.0%})")
            if delta > tolerance:
                regressions.append(line)
                print(f"FAIL  {line}")
            else:
                print(f"ok    {line}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond tolerance:",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    if missing:
        print(f"\n{len(missing)} metric key(s) have no baseline entry; "
              f"refresh the snapshots with --update and commit them",
              file=sys.stderr)
        return 2
    print("\nall benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// The P2V pre-processor as a command-line tool (the original toolchain's
// `p2v` executable). Reads a Prairie specification, runs the analysis,
// and emits one of:
//   --mode report   the translation report (default)
//   --mode volcano  a summary of the generated Volcano rule set
//   --mode dsl      the specification pretty-printed back as Prairie DSL
//   --mode cpp      a compilable C++ translation unit (the generated
//                   optimizer, as the original emitted C)
//
// Input: --input FILE, or --builtin relational|oodb for the shipped rule
// sets. Helper functions are the standard registry; specifications using
// other helpers can still be analyzed (--mode report/cpp) but will fail
// validation unless the helpers exist.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "dsl/parser.h"
#include "dsl/printer.h"
#include "optimizers/oodb.h"
#include "optimizers/native_helpers.h"
#include "optimizers/props.h"
#include "optimizers/relational.h"
#include "p2v/emit_cpp.h"
#include "p2v/translator.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: p2v_emit (--input FILE | --builtin relational|oodb)\n"
      "                [--mode report|volcano|dsl|cpp]\n"
      "                [--function NAME] [--namespace NS] [--output FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, builtin, output, mode = "report";
  prairie::p2v::EmitOptions emit_options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return Usage();
      input = v;
    } else if (arg == "--builtin") {
      const char* v = next();
      if (v == nullptr) return Usage();
      builtin = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return Usage();
      mode = v;
    } else if (arg == "--function") {
      const char* v = next();
      if (v == nullptr) return Usage();
      emit_options.function_name = v;
    } else if (arg == "--namespace") {
      const char* v = next();
      if (v == nullptr) return Usage();
      emit_options.namespace_name = v;
    } else if (arg == "--output") {
      const char* v = next();
      if (v == nullptr) return Usage();
      output = v;
    } else {
      return Usage();
    }
  }

  std::string text;
  if (builtin == "relational") {
    text = prairie::opt::RelationalSpecText();
  } else if (builtin == "oodb") {
    text = prairie::opt::OodbSpecText();
  } else if (!input.empty()) {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "p2v_emit: cannot read '%s'\n", input.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    return Usage();
  }

  auto rules = prairie::dsl::ParseRuleSet(text, prairie::opt::StandardHelpers());
  if (!rules.ok()) {
    std::fprintf(stderr, "p2v_emit: %s\n", rules.status().ToString().c_str());
    return 1;
  }

  auto write_out = [&output](const std::string& contents) -> int {
    if (output.empty()) {
      std::fputs(contents.c_str(), stdout);
      return 0;
    }
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "p2v_emit: cannot write '%s'\n", output.c_str());
      return 1;
    }
    out << contents;
    return 0;
  };

  if (mode == "report") {
    prairie::p2v::TranslationReport report;
    auto v = prairie::p2v::Translate(*rules, &report);
    if (!v.ok()) {
      std::fprintf(stderr, "p2v_emit: %s\n", v.status().ToString().c_str());
      return 1;
    }
    return write_out(report.ToString());
  }
  if (mode == "volcano") {
    auto v = prairie::p2v::Translate(*rules, nullptr);
    if (!v.ok()) {
      std::fprintf(stderr, "p2v_emit: %s\n", v.status().ToString().c_str());
      return 1;
    }
    return write_out((*v)->ToString());
  }
  if (mode == "dsl") {
    auto text_out = prairie::dsl::PrintRuleSet(*rules);
    if (!text_out.ok()) {
      std::fprintf(stderr, "p2v_emit: %s\n",
                   text_out.status().ToString().c_str());
      return 1;
    }
    return write_out(*text_out);
  }
  if (mode == "cpp") {
    emit_options.native_helpers = prairie::opt::native::NativeHelperMap();
    emit_options.extra_includes.push_back("optimizers/native_helpers.h");
    auto source = prairie::p2v::EmitCpp(*rules, emit_options);
    if (!source.ok()) {
      std::fprintf(stderr, "p2v_emit: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    return write_out(*source);
  }
  return Usage();
}

// Quickstart: write a Prairie specification, translate it with P2V, and
// optimize a query.
//
// This walks the paper's §2 running example end to end:
//   1. a Prairie rule set (T-rules + I-rules, incl. the Null rule that
//      makes SORT an enforcer-operator) written in the DSL,
//   2. the P2V pre-processor translating it to a Volcano rule set,
//   3. the Volcano search engine optimizing SORT(JOIN(RET(R1), RET(R2)))
//      — Figure 1 of the paper — into an access plan.

#include <cstdio>

#include "dsl/parser.h"
#include "optimizers/props.h"
#include "p2v/translator.h"
#include "volcano/engine.h"

using namespace prairie;  // NOLINT: example brevity.

// The paper's centralized relational optimizer, abridged: JOIN and RET
// with Nested_loops / Merge_join / File_scan, and the SORT
// enforcer-operator implemented by Merge_sort and Null (Figures 5-7).
static constexpr const char* kSpec = R"(
property tuple_order : sortspec;
property num_records : real;
property tuple_size : real;
property attributes : attrs;
property selection_predicate : predicate;
property join_predicate : predicate;
property projected_attributes : attrs;
property index_attr : attrs;
property mat_attr : attrs;
property mat_class : string;
property unnest_attr : attrs;
property unnest_mult : real;
property cost : cost;

operator RET(1);
operator JOIN(2);
operator SORT(1);

algorithm File_scan(1);
algorithm Nested_loops(2);
algorithm Merge_join(2);
algorithm Merge_sort(1);

trule join_commute: JOIN[D3](?1, ?2) => JOIN[D4](?2, ?1) {
  post { D4 = D3; }
}

irule file_scan: RET[D2](?1) => File_scan[D3](?1) {
  preopt { D3 = D2; D3.tuple_order = DONT_CARE; }
  postopt { D3.cost = D1.num_records; }
}

// Figure 6 of the paper.
irule nested_loops: JOIN[D3](?1, ?2) => Nested_loops[D5](?1:D4, ?2) {
  preopt { D5 = D3; D4 = D1; D4.tuple_order = D3.tuple_order; }
  postopt { D5.cost = D4.cost + D4.num_records * D2.cost; }
}

irule merge_join: JOIN[D3](?1, ?2) => Merge_join[D6](?1:D4, ?2:D5) {
  test is_equijoinable(D3.join_predicate);
  preopt {
    D6 = D3;
    D4 = D1;
    D5 = D2;
    D4.tuple_order = sort_on(side_join_attrs(D3.join_predicate, D1.attributes));
    D5.tuple_order = sort_on(side_join_attrs(D3.join_predicate, D2.attributes));
    D6.tuple_order = sort_on(side_join_attrs(D3.join_predicate, D1.attributes));
  }
  postopt { D6.cost = D4.cost + D5.cost + D4.num_records + D5.num_records; }
}

// Figure 5 of the paper.
irule merge_sort: SORT[D2](?1) => Merge_sort[D3](?1) {
  test D2.tuple_order != DONT_CARE;
  preopt { D3 = D2; }
  postopt { D3.cost = D1.cost + D3.num_records * log(D3.num_records); }
}

// Figure 7(b): the Null rule that makes SORT an enforcer-operator.
irule null_sort: SORT[D2](?1) => Null[D4](?1:D3) {
  preopt { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
  postopt { D4.cost = D3.cost; }
}
)";

int main() {
  // 1. Parse the Prairie specification.
  auto rules = dsl::ParseRuleSet(kSpec, opt::StandardHelpers());
  if (!rules.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }
  std::printf("Parsed %zu T-rule(s) and %zu I-rule(s).\n",
              rules->trules.size(), rules->irules.size());

  // 2. Translate to a Volcano rule set with the P2V pre-processor.
  p2v::TranslationReport report;
  auto volcano_rules = p2v::Translate(*rules, &report);
  if (!volcano_rules.ok()) {
    std::fprintf(stderr, "P2V error: %s\n",
                 volcano_rules.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", report.ToString().c_str());

  // 3. Describe two base relations.
  catalog::Catalog cat;
  {
    using catalog::AttributeDef;
    std::vector<AttributeDef> attrs{
        {"oid", algebra::ValueType::kInt, 10000, "", false, 1.0},
        {"a", algebra::ValueType::kInt, 500, "", false, 1.0}};
    (void)cat.AddFile(catalog::StoredFile("R1", attrs, 10000, 64));
    std::vector<AttributeDef> attrs2{
        {"oid", algebra::ValueType::kInt, 200, "", false, 1.0},
        {"a", algebra::ValueType::kInt, 80, "", false, 1.0}};
    (void)cat.AddFile(catalog::StoredFile("R2", attrs2, 200, 64));
  }

  // 4. Build the initialized operator tree of Figure 1(a):
  //    JOIN(RET(R1), RET(R2)) with an ORDER-BY expressed as a required
  //    physical property (SORT, being an enforcer-operator, lives in the
  //    requirement, not the tree).
  opt::TreeBuilder builder(volcano_rules->get()->algebra.get(), &cat);
  auto r1 = builder.Ret("R1", algebra::Predicate::True());
  auto r2 = builder.Ret("R2", algebra::Predicate::True());
  auto join = builder.Join(
      std::move(*r1), std::move(*r2),
      algebra::Predicate::EqAttrs({"R1", "a"}, {"R2", "a"}));
  if (!join.ok()) {
    std::fprintf(stderr, "tree error: %s\n",
                 join.status().ToString().c_str());
    return 1;
  }
  const auto& algebra_ref = *volcano_rules->get()->algebra;
  std::printf("Query:  %s, result sorted on R1.a\n",
              (*join)->ToString(algebra_ref).c_str());

  algebra::Descriptor required(&algebra_ref.properties());
  (void)required.Set(opt::kTupleOrder,
                     algebra::Value::Sort(
                         algebra::SortSpec::On({"R1", "a"})));

  // 5. Optimize.
  volcano::Optimizer optimizer(volcano_rules->get(), &cat);
  auto plan = optimizer.Optimize(**join, required);
  if (!plan.ok()) {
    std::fprintf(stderr, "optimize error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Plan:   %s\n", plan->root->ToString(algebra_ref).c_str());
  std::printf("Cost:   %.1f\n\n", plan->cost);
  std::printf("%s", plan->root->TreeString(algebra_ref).c_str());
  std::printf(
      "\nNote how the optimizer chose between Nested_loops (order-\n"
      "preserving) and Merge_join (produces the order as a side effect)\n"
      "and whether a Merge_sort enforcer was needed on top — the\n"
      "trade-off the paper's SORT/Null machinery exists to express.\n");
  return 0;
}

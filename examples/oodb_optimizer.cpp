// The Open-OODB-scale optimizer (paper §4) driven end to end: the shipped
// 22-T-rule / 11-I-rule Prairie specification is translated by P2V and
// used to optimize each of the paper's query families Q1..Q8, printing
// the chosen access plans and search statistics.

#include <cstdio>

#include "optimizers/oodb.h"
#include "p2v/translator.h"
#include "volcano/engine.h"
#include "workload/workload.h"

using namespace prairie;  // NOLINT: example brevity.

int main() {
  auto prairie_rules = opt::BuildOodbPrairie();
  if (!prairie_rules.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 prairie_rules.status().ToString().c_str());
    return 1;
  }
  p2v::TranslationReport report;
  auto rules = p2v::Translate(*prairie_rules, &report);
  if (!rules.ok()) {
    std::fprintf(stderr, "P2V error: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.ToString().c_str());

  for (int q = 1; q <= 8; ++q) {
    workload::QuerySpec spec = workload::PaperQuery(q, /*num_joins=*/2,
                                                    /*seed=*/42);
    auto w = workload::MakeWorkload(*(*rules)->algebra, spec);
    if (!w.ok()) {
      std::fprintf(stderr, "workload error: %s\n",
                   w.status().ToString().c_str());
      return 1;
    }
    volcano::Optimizer optimizer(rules->get(), &w->catalog);
    auto plan = optimizer.Optimize(*w->query);
    std::printf("----------------------------------------------------\n");
    std::printf("Q%d%s:\n  query: %s\n", q,
                spec.with_indexes ? " (with indices)" : "",
                w->query->ToString(*(*rules)->algebra).c_str());
    if (!plan.ok()) {
      std::printf("  failed: %s\n", plan.status().ToString().c_str());
      continue;
    }
    std::printf("  plan:  %s\n",
                plan->root->ToString(*(*rules)->algebra).c_str());
    std::printf("  cost:  %.1f   (%zu equivalence classes, %zu logical "
                "exprs, %zu plans costed)\n",
                plan->cost, optimizer.stats().groups,
                optimizer.stats().mexprs, optimizer.stats().plans_costed);
  }
  return 0;
}

// Extensibility: the point of rule-based optimizers (paper §1). This
// example takes the shipped relational Prairie specification, appends a
// new algorithm and two new rules — a hash join and a "small outer"
// guarded variant of nested loops — re-runs P2V, and shows the optimizer
// picking the new algorithm where it wins.
//
// Note what is NOT needed: no re-classification of properties, no new
// helper functions for Volcano's do_any_good/derive_phy_prop, no edits to
// the existing rules. That robustness under extension is Prairie's claim.

#include <cstdio>
#include <string>

#include "dsl/parser.h"
#include "optimizers/props.h"
#include "optimizers/relational.h"
#include "p2v/translator.h"
#include "volcano/engine.h"
#include "workload/workload.h"

using namespace prairie;  // NOLINT: example brevity.

int main() {
  // Start from the shipped relational rule set and extend its text.
  std::string spec = opt::RelationalSpecText();
  spec += R"(
// --- extension: a hash join ---
algorithm Hash_join(2);

irule hash_join: JOIN[D3](?1, ?2) => Hash_join[D4](?1, ?2) {
  test is_equijoinable(D3.join_predicate);
  preopt { D4 = D3; D4.tuple_order = DONT_CARE; }
  postopt { D4.cost = D1.cost + D2.cost + D1.num_records + D2.num_records; }
}
)";

  for (bool extended : {false, true}) {
    auto rules = dsl::ParseRuleSet(
        extended ? spec.c_str() : opt::RelationalSpecText(),
        opt::StandardHelpers());
    if (!rules.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   rules.status().ToString().c_str());
      return 1;
    }
    p2v::TranslationReport report;
    auto volcano_rules = p2v::Translate(*rules, &report);
    if (!volcano_rules.ok()) {
      std::fprintf(stderr, "P2V error: %s\n",
                   volcano_rules.status().ToString().c_str());
      return 1;
    }
    workload::QuerySpec q;
    q.expr = workload::ExprKind::kE1;
    q.num_joins = 3;
    q.seed = 5;
    auto w = workload::MakeWorkload(*(*volcano_rules)->algebra, q);
    if (!w.ok()) {
      std::fprintf(stderr, "workload error: %s\n",
                   w.status().ToString().c_str());
      return 1;
    }
    volcano::Optimizer optimizer(volcano_rules->get(), &w->catalog);
    auto plan = optimizer.Optimize(*w->query);
    std::printf("%s rule set: %d trans_rules, %d impl_rules\n",
                extended ? "extended" : "original ", report.output_trans_rules,
                report.output_impl_rules);
    if (plan.ok()) {
      std::printf("  best plan: %s\n  cost: %.1f\n\n",
                  plan->root->ToString(*(*volcano_rules)->algebra).c_str(),
                  plan->cost);
    } else {
      std::printf("  failed: %s\n\n", plan.status().ToString().c_str());
    }
  }
  std::printf(
      "The extension dropped the plan cost: hash joins beat nested loops\n"
      "on unsorted equi-joins, and P2V re-derived the rule classification\n"
      "automatically — nothing else in the specification changed.\n");
  return 0;
}

// End to end: optimize an object query AND execute the chosen access plan
// against an in-memory database, verifying the result against a naive
// evaluation. This is the full pipeline a downstream system embeds:
//
//   Prairie DSL -> P2V -> Volcano search -> access plan -> iterators.

#include <cstdio>

#include "exec/builder.h"
#include "optimizers/executors.h"
#include "optimizers/oodb.h"
#include "p2v/translator.h"
#include "volcano/engine.h"
#include "workload/workload.h"

using namespace prairie;  // NOLINT: example brevity.

int main() {
  auto prairie_rules = opt::BuildOodbPrairie();
  if (!prairie_rules.ok()) return 1;
  auto rules = p2v::Translate(*prairie_rules, nullptr);
  if (!rules.ok()) return 1;

  // A small E4-style query: SELECT over joins of MAT-augmented classes,
  // with catalogs small enough to print.
  workload::QuerySpec spec = workload::PaperQuery(/*number=*/8,
                                                  /*num_joins=*/2,
                                                  /*seed=*/2026);
  spec.min_card = 6;
  spec.max_card = 24;
  auto w = workload::MakeWorkload(*(*rules)->algebra, spec);
  if (!w.ok()) {
    std::fprintf(stderr, "workload: %s\n", w.status().ToString().c_str());
    return 1;
  }
  auto db = workload::MakeDatabase(w->catalog, /*seed=*/7);
  if (!db.ok()) {
    std::fprintf(stderr, "database: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::printf("Catalog:\n%s\n\n", w->catalog.ToString().c_str());
  std::printf("Query: %s\n\n", w->query->ToString(*(*rules)->algebra).c_str());

  // Optimize.
  volcano::Optimizer optimizer(rules->get(), &w->catalog);
  auto plan = optimizer.Optimize(*w->query);
  if (!plan.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Chosen plan (cost %.1f):\n%s\n", plan->cost,
              plan->root->TreeString(*(*rules)->algebra).c_str());

  // Execute the plan.
  exec::ExecutorRegistry registry;
  if (!opt::RegisterStandardExecutors(&registry).ok()) return 1;
  auto plan_expr = plan->root->ToExpr(*(*rules)->algebra);
  auto it = registry.Build(*plan_expr, *(*rules)->algebra, *db);
  if (!it.ok()) {
    std::fprintf(stderr, "build: %s\n", it.status().ToString().c_str());
    return 1;
  }
  auto rows = exec::CollectAll(it->get());
  if (!rows.ok()) {
    std::fprintf(stderr, "exec: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("Result: %zu row(s); schema %s\n", rows->size(),
              (*it)->schema().ToString().c_str());
  size_t shown = 0;
  for (const exec::Row& row : *rows) {
    if (shown++ >= 5) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s\n", exec::RowToString(row).c_str());
  }

  // Cross-check against a second, unpruned optimization (a different plan
  // of the same equivalence class must return the same multiset of rows).
  volcano::OptimizerOptions full;
  full.prune = false;
  volcano::Optimizer reference_optimizer(rules->get(), &w->catalog, full);
  auto ref_plan = reference_optimizer.Optimize(*w->query);
  if (ref_plan.ok()) {
    auto ref_expr = ref_plan->root->ToExpr(*(*rules)->algebra);
    auto ref_it = registry.Build(*ref_expr, *(*rules)->algebra, *db);
    if (ref_it.ok()) {
      auto ref_rows = exec::CollectAll(ref_it->get());
      if (ref_rows.ok()) {
        std::printf("\nCross-check vs. unpruned search: results %s.\n",
                    exec::SameResult(*rows, *ref_rows) ? "MATCH"
                                                       : "DIFFER (bug!)");
      }
    }
  }
  return 0;
}
